package server

// The non-check task routes: /v1/containment, /v1/relevance and /v1/chase
// ride the same spine as /v1/check — strict JSON decoding, budget
// resolution (item budget, then ?budget=, then the server default), the
// bounded worker pool, 504 + Retry-After on a blown budget, and the
// exact-results-only LRU keyed by FingerprintTask. Mixed /v1/batch items
// funnel through doTaskItem into the same path.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"accltl/accesscheck"
)

// ContainmentRequest is the wire form of one containment question. Mode
// selects the engine and which fields are read: "ucq" (default) reads
// q1/q2; "datalog" reads rules/goal/q2/depth; "access" reads
// relations/methods/q1/q2/seed/depth.
type ContainmentRequest struct {
	Mode string `json:"mode,omitempty"`
	// Q1 and Q2 are positive sentences (accesscheck.ParseSentence syntax);
	// containment asks Q1 ⊆ Q2 (datalog mode: program ⊆ Q2).
	Q1 string `json:"q1,omitempty"`
	Q2 string `json:"q2"`
	// Rules and Goal define the datalog program ("Head(x) :- Body(x)", one
	// rule per string; Goal names the answer predicate).
	Rules []string `json:"rules,omitempty"`
	Goal  string   `json:"goal,omitempty"`
	// Relations/Methods declare the access-mode schema
	// (accesscheck.ParseSchema syntax); Seed is its initially known
	// instance as textual facts ("Rel(v,...)").
	Relations []string `json:"relations,omitempty"`
	Methods   []string `json:"methods,omitempty"`
	Seed      []string `json:"seed,omitempty"`
	// Depth bounds the search (0 = derived default).
	Depth  int    `json:"depth,omitempty"`
	Budget string `json:"budget,omitempty"`
}

// ContainmentResponse is the wire form of a ContainmentReport in the task
// envelope.
type ContainmentResponse struct {
	Contained         bool    `json:"contained"`
	Exact             bool    `json:"exact"`
	Truncated         bool    `json:"truncated"`
	Mode              string  `json:"mode"`
	Engine            string  `json:"engine"`
	DepthBound        int     `json:"depth_bound,omitempty"`
	ExpansionsChecked int     `json:"expansions_checked,omitempty"`
	PathsExplored     int     `json:"paths_explored,omitempty"`
	Counterexample    string  `json:"counterexample,omitempty"`
	Witness           string  `json:"witness,omitempty"`
	Formula           string  `json:"formula,omitempty"`
	ElapsedMS         float64 `json:"elapsed_ms"`
	Cached            bool    `json:"cached"`
}

// RelevanceRequest is the wire form of one relevance question. A non-empty
// probe selects long-term relevance of the access (probe, binding) to
// query; an empty probe selects accessible-part mode, where hidden is the
// concealed instance and seed the initially known values.
type RelevanceRequest struct {
	Relations []string `json:"relations"`
	Methods   []string `json:"methods,omitempty"`
	Probe     string   `json:"probe,omitempty"`
	Binding   []string `json:"binding,omitempty"`
	Query     string   `json:"query"`
	Hidden    []string `json:"hidden,omitempty"`
	Seed      []string `json:"seed,omitempty"`
	Grounded  bool     `json:"grounded,omitempty"`
	MaxDepth  int      `json:"max_depth,omitempty"`
	Budget    string   `json:"budget,omitempty"`
}

// RelevanceResponse is the wire form of a RelevanceReport in the task
// envelope. Relevant answers probe mode, Answer and Accessible answer
// accessible-part mode.
type RelevanceResponse struct {
	Relevant      bool     `json:"relevant"`
	Answer        bool     `json:"answer"`
	Truncated     bool     `json:"truncated"`
	Engine        string   `json:"engine"`
	Accessible    []string `json:"accessible,omitempty"`
	PathsExplored int      `json:"paths_explored,omitempty"`
	Depth         int      `json:"depth,omitempty"`
	Witness       string   `json:"witness,omitempty"`
	Formula       string   `json:"formula,omitempty"`
	ElapsedMS     float64  `json:"elapsed_ms"`
	Cached        bool     `json:"cached"`
}

// ChaseRequest is the wire form of one FD+ID implication question: does
// the set of dependencies imply sigma? Arities declare the relations
// ("R:3"), FDs are "R:0,1->2", IDs are "R[0,1]<=S[2,3]", sigma is an FD.
type ChaseRequest struct {
	Arities    []string `json:"arities"`
	FDs        []string `json:"fds,omitempty"`
	IDs        []string `json:"ids,omitempty"`
	Sigma      string   `json:"sigma"`
	StepBudget int      `json:"step_budget,omitempty"`
	Budget     string   `json:"budget,omitempty"`
}

// ChaseResponse is the wire form of a ChaseReport in the task envelope.
// Terminated distinguishes a real "not implied" (fixpoint reached) from
// budget exhaustion, which also sets Truncated.
type ChaseResponse struct {
	Implied    bool    `json:"implied"`
	Verdict    string  `json:"verdict"`
	Terminated bool    `json:"terminated"`
	Truncated  bool    `json:"truncated"`
	Engine     string  `json:"engine"`
	Steps      int     `json:"steps"`
	Tuples     int     `json:"tuples"`
	StepBudget int     `json:"step_budget"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	Cached     bool    `json:"cached"`
}

// parseContainmentTask translates the wire form into a validated facade
// task; every failure is a 400.
func parseContainmentTask(req *ContainmentRequest) (*accesscheck.Task, error) {
	mode, err := accesscheck.ParseContainmentMode(req.Mode)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	q2, err := parseSentenceField("q2", req.Q2)
	if err != nil {
		return nil, err
	}
	var t *accesscheck.Task
	switch mode {
	case accesscheck.ContainUCQ:
		q1, err := parseSentenceField("q1", req.Q1)
		if err != nil {
			return nil, err
		}
		t = accesscheck.NewUCQContainmentTask(q1, q2)
	case accesscheck.ContainDatalog:
		prog, err := accesscheck.ParseProgram(req.Rules, req.Goal)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		t = accesscheck.NewDatalogContainmentTask(prog, q2, req.Depth)
	case accesscheck.ContainAccess:
		sch, seed, err := parseSchemaAndFacts(req.Relations, req.Methods, req.Seed, "seed")
		if err != nil {
			return nil, err
		}
		q1, err := parseSentenceField("q1", req.Q1)
		if err != nil {
			return nil, err
		}
		t = accesscheck.NewAccessContainmentTask(sch, q1, q2, seed, req.Depth)
	}
	if err := t.Validate(); err != nil {
		return nil, badRequest("%v", err)
	}
	return t, nil
}

// parseRelevanceTask translates the wire form into a validated facade task.
func parseRelevanceTask(req *RelevanceRequest) (*accesscheck.Task, error) {
	sch, hidden, err := parseSchemaAndFacts(req.Relations, req.Methods, req.Hidden, "hidden")
	if err != nil {
		return nil, err
	}
	query, err := parseSentenceField("query", req.Query)
	if err != nil {
		return nil, err
	}
	rt := &accesscheck.RelevanceTask{
		Schema:   sch,
		Probe:    req.Probe,
		Query:    query,
		Hidden:   hidden,
		Grounded: req.Grounded,
		MaxDepth: req.MaxDepth,
	}
	if len(req.Seed) > 0 {
		seed, err := accesscheck.ParseInstance(sch, req.Seed)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		rt.Seed = seed
	}
	if req.Probe != "" {
		m, ok := sch.Method(req.Probe)
		if !ok {
			return nil, badRequest("schema has no method %q", req.Probe)
		}
		binding, err := accesscheck.ParseBinding(m, req.Binding)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		rt.Binding = binding
	}
	t := accesscheck.NewRelevanceTask(rt)
	if err := t.Validate(); err != nil {
		return nil, badRequest("%v", err)
	}
	return t, nil
}

// parseChaseTask translates the wire form into a validated facade task.
func parseChaseTask(req *ChaseRequest) (*accesscheck.Task, error) {
	ct := &accesscheck.ChaseTask{
		Arities:    make(map[string]int, len(req.Arities)),
		StepBudget: req.StepBudget,
	}
	for _, a := range req.Arities {
		rel, n, err := accesscheck.ParseArity(a)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		ct.Arities[rel] = n
	}
	for _, src := range req.FDs {
		fd, err := accesscheck.ParseFD(src)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		ct.FDs = append(ct.FDs, fd)
	}
	for _, src := range req.IDs {
		id, err := accesscheck.ParseID(src)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		ct.IDs = append(ct.IDs, id)
	}
	if strings.TrimSpace(req.Sigma) == "" {
		return nil, badRequest("missing sigma")
	}
	sigma, err := accesscheck.ParseFD(req.Sigma)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	ct.Sigma = sigma
	t := accesscheck.NewChaseTask(ct)
	if err := t.Validate(); err != nil {
		return nil, badRequest("%v", err)
	}
	return t, nil
}

// parseSentenceField parses one named sentence field, failing 400 with the
// field name on errors (and on absence).
func parseSentenceField(name, src string) (accesscheck.Sentence, error) {
	if strings.TrimSpace(src) == "" {
		return nil, badRequest("missing %s", name)
	}
	q, err := accesscheck.ParseSentence(src)
	if err != nil {
		return nil, badRequest("bad %s: %v", name, err)
	}
	return q, nil
}

// parseSchemaAndFacts parses a schema declaration plus an optional fact
// list over it ("seed" / "hidden"); an empty fact list yields nil.
func parseSchemaAndFacts(relations, methods, facts []string, factName string) (*accesscheck.Schema, *accesscheck.Instance, error) {
	if len(relations) == 0 {
		return nil, nil, badRequest("missing relations")
	}
	sch, err := accesscheck.ParseSchema(relations, methods)
	if err != nil {
		return nil, nil, badRequest("%v", err)
	}
	if len(facts) == 0 {
		return sch, nil, nil
	}
	in, err := accesscheck.ParseInstance(sch, facts)
	if err != nil {
		return nil, nil, badRequest("bad %s: %v", factName, err)
	}
	return sch, in, nil
}

// doTask runs one non-check task end to end on the shared spine: cache
// probe under the task fingerprint, bounded solve in the worker pool,
// exact-results-only cache admission. The caller has already counted the
// request and parsed the task; ctx must carry the budget.
func (s *Server) doTask(ctx context.Context, t *accesscheck.Task) (*accesscheck.TaskResult, bool, error) {
	kind := t.Kind
	fp, err := s.taskChk.FingerprintTask(t)
	if err != nil {
		return nil, false, badRequest("%v", err)
	}
	if tr, ok := s.cache.Get(fp); ok && tr.Kind == kind {
		s.taskCacheHits[kind].Add(1)
		return &tr, true, nil
	}
	s.taskCacheMisses[kind].Add(1)

	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, false, s.ctxErr(ctx, ctx.Err())
	}
	s.inFlight.Add(1)
	res, err := s.taskChk.Do(ctx, t)
	s.inFlight.Add(-1)
	<-s.sem

	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return nil, false, s.ctxErr(ctx, err)
		}
		s.errs.Add(1)
		return nil, false, &httpError{status: http.StatusUnprocessableEntity, err: err}
	}
	if res.Truncated {
		s.truncations.Add(1)
		s.taskTruncations[kind].Add(1)
	} else {
		s.cache.Add(fp, *res)
	}
	return res, false, nil
}

// serveTask is the single-task handler tail every non-check route shares:
// budget resolution, deadline, doTask, render.
func (s *Server) serveTask(w http.ResponseWriter, r *http.Request, itemBudget string,
	t *accesscheck.Task, render func(*accesscheck.TaskResult, bool) any) {
	budget, err := s.resolveBudget(itemBudget, r)
	if err != nil {
		writeError(w, err, s.cfg.DefaultBudget)
		return
	}
	ctx, cancel := context.WithTimeoutCause(r.Context(), budget, errBudgetExhausted)
	defer cancel()
	tr, cached, err := s.doTask(ctx, t)
	if err != nil {
		writeError(w, err, budget)
		return
	}
	writeJSON(w, http.StatusOK, render(tr, cached))
}

func (s *Server) handleContainment(w http.ResponseWriter, r *http.Request) {
	s.taskRequests[accesscheck.TaskContainment].Add(1)
	var req ContainmentRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	t, err := parseContainmentTask(&req)
	if err != nil {
		writeError(w, err, s.cfg.DefaultBudget)
		return
	}
	s.serveTask(w, r, req.Budget, t, func(tr *accesscheck.TaskResult, cached bool) any {
		return wireContainment(tr, cached)
	})
}

func (s *Server) handleRelevance(w http.ResponseWriter, r *http.Request) {
	s.taskRequests[accesscheck.TaskRelevance].Add(1)
	var req RelevanceRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	t, err := parseRelevanceTask(&req)
	if err != nil {
		writeError(w, err, s.cfg.DefaultBudget)
		return
	}
	s.serveTask(w, r, req.Budget, t, func(tr *accesscheck.TaskResult, cached bool) any {
		return wireRelevance(tr, cached)
	})
}

func (s *Server) handleChase(w http.ResponseWriter, r *http.Request) {
	s.taskRequests[accesscheck.TaskChase].Add(1)
	var req ChaseRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	t, err := parseChaseTask(&req)
	if err != nil {
		writeError(w, err, s.cfg.DefaultBudget)
		return
	}
	s.serveTask(w, r, req.Budget, t, func(tr *accesscheck.TaskResult, cached bool) any {
		return wireChase(tr, cached)
	})
}

// doTaskItem runs one mixed-batch item: kind dispatch, per-kind parsing,
// and the shared task path; every failure stays inside this item.
func (s *Server) doTaskItem(ctx context.Context, item *TaskRequest) BatchItem {
	kind, err := accesscheck.ParseTaskKind(item.Task)
	if err != nil {
		return BatchItem{Task: item.Task, Error: err.Error()}
	}
	out := BatchItem{Task: kind.String()}
	switch kind {
	case accesscheck.TaskCheck:
		if item.Check == nil {
			out.Error = missingPayload(kind)
			return out
		}
		res, err := s.doCheck(ctx, *item.Check)
		if err != nil {
			out.Error = err.Error()
			return out
		}
		out.Result = res
	case accesscheck.TaskContainment:
		s.taskRequests[kind].Add(1)
		if item.Containment == nil {
			out.Error = missingPayload(kind)
			return out
		}
		t, err := parseContainmentTask(item.Containment)
		if err != nil {
			out.Error = err.Error()
			return out
		}
		tr, cached, err := s.doTask(ctx, t)
		if err != nil {
			out.Error = err.Error()
			return out
		}
		out.Containment = wireContainment(tr, cached)
	case accesscheck.TaskRelevance:
		s.taskRequests[kind].Add(1)
		if item.Relevance == nil {
			out.Error = missingPayload(kind)
			return out
		}
		t, err := parseRelevanceTask(item.Relevance)
		if err != nil {
			out.Error = err.Error()
			return out
		}
		tr, cached, err := s.doTask(ctx, t)
		if err != nil {
			out.Error = err.Error()
			return out
		}
		out.Relevance = wireRelevance(tr, cached)
	case accesscheck.TaskChase:
		s.taskRequests[kind].Add(1)
		if item.Chase == nil {
			out.Error = missingPayload(kind)
			return out
		}
		t, err := parseChaseTask(item.Chase)
		if err != nil {
			out.Error = err.Error()
			return out
		}
		tr, cached, err := s.doTask(ctx, t)
		if err != nil {
			out.Error = err.Error()
			return out
		}
		out.Chase = wireChase(tr, cached)
	}
	return out
}

func missingPayload(kind accesscheck.TaskKind) string {
	return fmt.Sprintf("%s item without %q payload", kind, kind.String())
}

func wireContainment(tr *accesscheck.TaskResult, cached bool) *ContainmentResponse {
	rep := tr.Containment
	out := &ContainmentResponse{
		Contained:         rep.Contained,
		Exact:             rep.Exact,
		Truncated:         tr.Truncated,
		Mode:              rep.Mode.String(),
		Engine:            tr.Engine,
		DepthBound:        rep.DepthBound,
		ExpansionsChecked: rep.ExpansionsChecked,
		PathsExplored:     rep.PathsExplored,
		Counterexample:    rep.Counterexample,
		Formula:           rep.Formula,
		ElapsedMS:         float64(tr.Elapsed) / float64(time.Millisecond),
		Cached:            cached,
	}
	if rep.Witness != nil {
		out.Witness = rep.Witness.String()
	}
	return out
}

func wireRelevance(tr *accesscheck.TaskResult, cached bool) *RelevanceResponse {
	rep := tr.Relevance
	out := &RelevanceResponse{
		Relevant:      rep.Relevant,
		Answer:        rep.Answer,
		Truncated:     tr.Truncated,
		Engine:        tr.Engine,
		PathsExplored: rep.PathsExplored,
		Depth:         rep.Depth,
		Formula:       rep.Formula,
		ElapsedMS:     float64(tr.Elapsed) / float64(time.Millisecond),
		Cached:        cached,
	}
	if rep.Witness != nil {
		out.Witness = rep.Witness.String()
	}
	if rep.Accessible != nil {
		out.Accessible = renderInstance(rep.Accessible)
	}
	return out
}

func wireChase(tr *accesscheck.TaskResult, cached bool) *ChaseResponse {
	rep := tr.Chase
	return &ChaseResponse{
		Implied:    rep.Implied,
		Verdict:    rep.Verdict,
		Terminated: rep.Terminated,
		Truncated:  tr.Truncated,
		Engine:     tr.Engine,
		Steps:      rep.Steps,
		Tuples:     rep.Tuples,
		StepBudget: rep.Budget,
		ElapsedMS:  float64(tr.Elapsed) / float64(time.Millisecond),
		Cached:     cached,
	}
}

// renderInstance prints an instance as sorted textual facts — the same
// "Rel(v,...)" syntax the request accepted, so responses round-trip.
func renderInstance(in *accesscheck.Instance) []string {
	var out []string
	for _, rel := range in.Schema().Relations() {
		for _, t := range in.Tuples(rel.Name()) {
			out = append(out, rel.Name()+t.String())
		}
	}
	sort.Strings(out)
	return out
}
