package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// The test schema is the paper's phone-directory example: Mobile# with a
// boolean access on the number, Address with an access on (street, postcode).
var testRelations = []string{
	"Mobile#:string,string,string,int",
	"Address:string,string,string,int",
}

var testMethods = []string{
	"AcM1:Mobile#:0",
	"AcM2:Address:0,1",
}

// satFormula has a short witness (bind AcM1 eventually fires);
// unsatFormula demands a pre-populated Mobile# fact that no access can
// produce before the first transition under an empty I0 with G-always
// scope, making it unsatisfiable within the bound.
const (
	satFormula   = `(![exists n,p,s,ph. pre Mobile#(n,p,s,ph)]) U [exists n. bind AcM1(n)]`
	unsatFormula = `[exists n,p,s,ph. pre Mobile#(n,p,s,ph)] & (![exists n,p,s,ph. pre Mobile#(n,p,s,ph)])`
)

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(cfg))
	t.Cleanup(ts.Close)
	return ts
}

// postJSONErr is the goroutine-safe transport helper: callers off the test
// goroutine must use it (t.Fatal from a spawned goroutine only kills that
// goroutine and silently corrupts the test).
func postJSONErr(url string, body any) (int, []byte, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, out.Bytes(), nil
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func checkReq(formula string) CheckRequest {
	return CheckRequest{Relations: testRelations, Methods: testMethods, Formula: formula}
}

func TestCheckEndpointVerdicts(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/check", checkReq(satFormula))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out CheckResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Satisfiable {
		t.Errorf("sat formula reported unsatisfiable: %+v", out)
	}
	if out.Witness == "" {
		t.Error("satisfiable without a witness")
	}
	if out.Cached {
		t.Error("first solve claims to be cached")
	}

	resp, body = postJSON(t, ts.URL+"/v1/check", checkReq(unsatFormula))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Satisfiable {
		t.Errorf("unsat formula reported satisfiable: %+v", out)
	}
}

func TestCheckEndpointBadRequests(t *testing.T) {
	ts := newTestServer(t, Config{})
	cases := []CheckRequest{
		{},                         // everything missing
		{Relations: testRelations}, // no formula
		{Formula: satFormula},      // no relations
		{Relations: []string{"nope"}, Formula: satFormula},              // bad relation decl
		{Relations: testRelations, Formula: "[[["},                      // bad formula
		{Relations: testRelations, Formula: satFormula, Budget: "huh"},  // bad budget
		{Relations: testRelations, Formula: satFormula, Budget: "-5ms"}, // negative budget
	}
	for i, c := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/check", c)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400: %s", i, resp.StatusCode, body)
		}
	}
}

func metrics(t *testing.T, ts *httptest.Server) map[string]int {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]int)
	for _, line := range strings.Split(buf.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			// Ratio and estimate gauges are floats; keep the integer map
			// shape and floor them (assertions only read counters).
			f, ferr := strconv.ParseFloat(fields[1], 64)
			if ferr != nil {
				t.Fatalf("bad metric line %q", line)
			}
			n = int(f)
		}
		out[fields[0]] = n
	}
	return out
}

// TestRepeatedRequestsHitCache: the second identical request must be served
// from the cache, observably via the stats endpoint and the cached flag.
func TestRepeatedRequestsHitCache(t *testing.T) {
	ts := newTestServer(t, Config{})
	var out CheckResponse
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/check", checkReq(satFormula))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if want := i > 0; out.Cached != want {
			t.Errorf("request %d: cached = %v, want %v", i, out.Cached, want)
		}
	}
	m := metrics(t, ts)
	if m["accserve_cache_hits_total"] != 2 {
		t.Errorf("cache hits = %d, want 2", m["accserve_cache_hits_total"])
	}
	if m["accserve_cache_misses_total"] != 1 {
		t.Errorf("cache misses = %d, want 1", m["accserve_cache_misses_total"])
	}
	if m["accserve_checks_total"] != 1 {
		t.Errorf("solves = %d, want 1 (second and third served from cache)", m["accserve_checks_total"])
	}
}

// TestDifferentOptionsMissCache: the fingerprint covers options, so the
// same schema/formula under different restrictions re-solves.
func TestDifferentOptionsMissCache(t *testing.T) {
	ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/check", checkReq(satFormula))
	req := checkReq(satFormula)
	req.Options = &CheckOptions{Grounded: true}
	_, body := postJSON(t, ts.URL+"/v1/check", req)
	var out CheckResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Cached {
		t.Error("request with different options served from cache")
	}
}

// TestBatchMixedVerdicts: a batch of sat/unsat/broken requests returns
// correct per-item outcomes in order.
func TestBatchMixedVerdicts(t *testing.T) {
	ts := newTestServer(t, Config{})
	batch := BatchRequest{Requests: []CheckRequest{
		checkReq(satFormula),
		checkReq(unsatFormula),
		{Relations: testRelations, Formula: "[[["},
		checkReq(satFormula),
	}}
	resp, body := postJSON(t, ts.URL+"/v1/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(out.Results))
	}
	if r := out.Results[0]; r.Result == nil || !r.Result.Satisfiable {
		t.Errorf("item 0: %+v, want satisfiable", r)
	}
	if r := out.Results[1]; r.Result == nil || r.Result.Satisfiable {
		t.Errorf("item 1: %+v, want unsatisfiable", r)
	}
	if r := out.Results[2]; r.Error == "" {
		t.Errorf("item 2: parse failure not reported")
	}
	if r := out.Results[3]; r.Result == nil || !r.Result.Satisfiable {
		t.Errorf("item 3: %+v, want satisfiable", r)
	}
	// Re-sending the whole batch: the exact items (sat and unsat) are now
	// cached; only the broken item still fails.
	resp, body = postJSON(t, ts.URL+"/v1/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat batch: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 3} {
		if r := out.Results[i]; r.Result == nil || !r.Result.Cached {
			t.Errorf("repeat batch item %d not served from cache: %+v", i, r)
		}
	}
}

func TestBatchLimits(t *testing.T) {
	ts := newTestServer(t, Config{MaxBatch: 2})
	resp, _ := postJSON(t, ts.URL+"/v1/batch", BatchRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/batch", BatchRequest{Requests: []CheckRequest{
		checkReq(satFormula), checkReq(satFormula), checkReq(satFormula),
	}})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status %d, want 413", resp.StatusCode)
	}
}

// TestTinyBudgetReturnsDeadlineError: a budget far below the solve time
// must produce a 504, not a hang. The formula forces the bounded engine
// over a deep search.
func TestTinyBudgetReturnsDeadlineError(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := checkReq(unsatFormula)
	req.Options = &CheckOptions{MaxDepth: 8, Engine: "bounded"}
	req.Budget = "1ns"
	done := make(chan struct{})
	var status int
	var body []byte
	var postErr error
	go func() {
		defer close(done)
		status, body, postErr = postJSONErr(ts.URL+"/v1/check", req)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("tiny-budget request hung")
	}
	if postErr != nil {
		t.Fatal(postErr)
	}
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", status, body)
	}
	m := metrics(t, ts)
	if m["accserve_deadline_exceeded_total"] == 0 {
		t.Error("deadline expiry not counted in metrics")
	}
}

// TestBudgetQueryParameter: ?budget= applies when the body names none.
func TestBudgetQueryParameter(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := checkReq(unsatFormula)
	req.Options = &CheckOptions{MaxDepth: 8, Engine: "bounded"}
	resp, body := postJSON(t, ts.URL+"/v1/check?budget=1ns", req)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
}

// TestTruncatedResultsNotCached: a capped search is served with
// truncated=true but never enters the cache — the repeat re-solves.
func TestTruncatedResultsNotCached(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := checkReq(unsatFormula)
	req.Options = &CheckOptions{MaxPaths: 3} // cap cuts the unsat search
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/check", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, body)
		}
		var out CheckResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if !out.Truncated {
			t.Fatalf("request %d: capped search not flagged truncated: %+v", i, out)
		}
		if out.Cached {
			t.Errorf("request %d: truncated result served from cache", i)
		}
	}
	m := metrics(t, ts)
	if m["accserve_truncations_total"] != 2 {
		t.Errorf("truncations = %d, want 2 (both solves capped)", m["accserve_truncations_total"])
	}
	if m["accserve_cache_hits_total"] != 0 {
		t.Errorf("cache hits = %d, want 0", m["accserve_cache_hits_total"])
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}

// TestConcurrentMixedTraffic drives the server with parallel check and
// batch requests; run under -race this exercises the cache and counters
// for data races.
func TestConcurrentMixedTraffic(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 4, CacheSize: 8})
	formulas := []string{satFormula, unsatFormula}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				f := formulas[(g+i)%len(formulas)]
				if g%2 == 0 {
					status, body, err := postJSONErr(ts.URL+"/v1/check", checkReq(f))
					if err != nil {
						t.Errorf("check: %v", err)
					} else if status != http.StatusOK {
						t.Errorf("check: status %d: %s", status, body)
					}
				} else {
					status, body, err := postJSONErr(ts.URL+"/v1/batch", BatchRequest{Requests: []CheckRequest{
						checkReq(f), checkReq(formulas[(g+i+1)%len(formulas)]),
					}})
					if err != nil {
						t.Errorf("batch: %v", err)
					} else if status != http.StatusOK {
						t.Errorf("batch: status %d: %s", status, body)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	m := metrics(t, ts)
	if m["accserve_in_flight"] != 0 {
		t.Errorf("in-flight = %d after traffic drained", m["accserve_in_flight"])
	}
	if m["accserve_cache_hits_total"] == 0 {
		t.Error("no cache hits across 60 identical-shaped requests")
	}
}

// TestOversizedBodyRejected: the body cap answers 413 instead of buffering
// an arbitrarily large request into memory.
func TestOversizedBodyRejected(t *testing.T) {
	ts := newTestServer(t, Config{MaxBodyBytes: 512})
	req := checkReq(satFormula)
	req.Formula = strings.Repeat("x", 2048) // garbage, but over the cap
	resp, body := postJSON(t, ts.URL+"/v1/check", req)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized check body: status %d, want 413: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/batch", BatchRequest{Requests: []CheckRequest{req}})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch body: status %d, want 413: %s", resp.StatusCode, body)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/check")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/check: status %d, want 405", resp.StatusCode)
	}
}
