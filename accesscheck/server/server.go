// Package server is the HTTP frontend of the accesscheck facade: a batch
// check service with bounded concurrency, per-request response-time budgets
// and an exact-results-only LRU cache, in the spirit of bounded-response-
// time query services (BlinkDB). It is the substrate later scaling work
// (sharding, multi-backend dispatch) plugs into.
//
// Endpoints:
//
//	POST /v1/check        AccLTL satisfiability; CheckRequest → CheckResponse
//	POST /v1/containment  query containment (ucq / datalog / access modes);
//	                      ContainmentRequest → ContainmentResponse
//	POST /v1/relevance    accessible part / long-term relevance;
//	                      RelevanceRequest → RelevanceResponse
//	POST /v1/chase        FD+ID implication; ChaseRequest → ChaseResponse
//	POST /v1/batch        many tasks; BatchRequest (check-only "requests" or
//	                      mixed-task "items") → BatchResponse
//	GET  /healthz         liveness probe
//	GET  /metrics         Prometheus-style text counters (hits, misses,
//	                      truncations, per-task counters, in-flight, ...)
//
// Every task kind shares one spine: the same budget resolution, the same
// bounded worker pool, the same 504 semantics on a blown budget, and the
// same exact-results-only LRU keyed by task-kind-aware fingerprints.
//
// Budget semantics: every check runs under a deadline. The most specific
// wins — the item's "budget" field, then the ?budget= query parameter, then
// the server's default. The budget becomes a context.WithTimeout around the
// solve, so an expired budget aborts the search loops promptly and the
// request fails with 504 (single check) or a per-item error (batch) instead
// of hanging.
//
// Cache-admission rule: only exact results are cached. A result with
// Truncated set — path cap, depth interplay, or response cap — is relative
// to this request's budget and caps, so it is returned to the caller but
// never admitted to the cache; a later identical request re-solves.
//
// Concurrency model: Workers bounds how many solves run at once, and
// Config.Parallelism bounds how many exploration walkers each solve may fan
// out to, so peak exploration concurrency is Workers × Parallelism; the
// default derivation keeps that product ≤ GOMAXPROCS. /metrics exposes both
// knobs plus workers_busy and the per-request parallelism sum/count.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"accltl/accesscheck"
	"accltl/accesscheck/cachetier"
	"accltl/accesscheck/fabric"
)

// Config sizes the server; zero values select sensible defaults.
type Config struct {
	// Workers bounds concurrent solves across all requests (default
	// GOMAXPROCS). Queued work waits for a slot but keeps honouring its
	// budget while waiting.
	Workers int
	// Parallelism is the per-check exploration walker count handed to
	// accesscheck.WithParallelism: each running solve may fan its search
	// out over this many goroutines, so the server's peak exploration
	// concurrency is Workers × Parallelism. The default (0) keeps that
	// product within the machine: max(1, GOMAXPROCS / Workers), i.e.
	// workers × parallelism ≤ GOMAXPROCS. An explicit value is taken as
	// given — operators may oversubscribe deliberately. Per-request
	// "parallelism" options can lower the value for their own check but
	// never raise it above this limit.
	Parallelism int
	// CacheSize is the LRU capacity in results (default 1024), split evenly
	// across CacheShards fingerprint-sharded segments.
	CacheSize int
	// CacheShards splits the in-memory result cache into this many
	// independently locked shards, selected by the same FNV+avalanche hash
	// the fabric's affinity ring uses (default 8, rounded up to a power of
	// two). More shards lower lock contention on hot mixed workloads; the
	// per-shard LRU discipline and the exact-only admission rule are
	// unchanged.
	CacheShards int
	// CacheDir, when non-empty, backs the result cache with an append-only
	// disk tier in this directory: entries evicted from memory (and the
	// residents at graceful shutdown, via Close) are written behind as wire
	// responses, and a restarted server answers previously seen exact
	// checks from disk without re-solving. The log is stamped with the
	// fingerprint scheme version; a log minted under another scheme is
	// discarded loudly at boot. Empty means memory-only (the previous
	// behavior).
	CacheDir string
	// NegativeCacheBits, when positive, arms a process-wide Bloom negative
	// cache of this many total bits (split across the solver and emptiness
	// engines) shared by every check's dominance memo: keys definitely
	// never seen skip the memo's striped locks entirely. Verdict-neutral by
	// construction — see accesscheck.WithNegativeCache. Zero disables.
	NegativeCacheBits int
	// DefaultBudget applies when neither the request body nor the query
	// string names one (default 5s). It must be positive: a server without
	// deadlines cannot promise bounded response times.
	DefaultBudget time.Duration
	// MaxBatch caps the requests accepted in one /v1/batch call
	// (default 256).
	MaxBatch int
	// MaxBodyBytes caps the request body size accepted by the JSON
	// endpoints (default 8 MiB): oversized bodies answer 413 instead of
	// being buffered into memory.
	MaxBodyBytes int64
	// Failpoints, when armed (accserve -failpoints / ACCSERVE_FAILPOINTS),
	// injects deterministic faults at the worker's shard handler
	// ("worker.shard") for chaos testing. Nil in production.
	Failpoints *fabric.Failpoints
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0) / c.Workers
		if c.Parallelism < 1 {
			c.Parallelism = 1
		}
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 1024
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 8
	}
	if c.DefaultBudget <= 0 {
		c.DefaultBudget = 5 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// Server is the HTTP handler. Construct with New; the zero value is not
// usable.
type Server struct {
	cfg Config
	// cache is the tiered result store: a fingerprint-sharded in-memory
	// LRU (exact results only), optionally written behind to an append-only
	// disk tier when Config.CacheDir is set. Only exact check results are
	// wire round-trippable, so only they persist; non-check task results
	// stay memory-resident.
	cache *cachetier.Tiered[accesscheck.TaskResult]
	// neg is the process-wide Bloom negative-cache set shared by every
	// check's dominance memo (nil when Config.NegativeCacheBits is 0).
	neg *accesscheck.NegativeCaches
	// ckpts holds suspended anytime frontiers keyed by the shard-less check
	// fingerprint: the opposite admission discipline of cache (partials
	// only, never served as answers — see accesscheck.CheckpointStore).
	ckpts *accesscheck.CheckpointStore
	sem   chan struct{}
	mux   *http.ServeMux
	// taskChk runs the non-check tasks. Their verdicts and fingerprints are
	// canonical in the payload alone (checker options do not leak in), so
	// one default-configured checker serves every such request.
	taskChk *accesscheck.Checker

	inFlight    atomic.Int64
	checks      atomic.Uint64
	truncations atomic.Uint64
	deadlines   atomic.Uint64
	cancels     atomic.Uint64
	// Cause-split expiry counters: deadlines/cancels keep the legacy
	// totals, while these three attribute each context death to what
	// actually killed it (see ctxErr).
	budgetExpiries atomic.Uint64
	shardExpiries  atomic.Uint64
	disconnects    atomic.Uint64
	// anytimePartials counts resumable coverage-tagged answers served;
	// anytimeResumes counts requests that found a stored frontier to
	// resume from.
	anytimePartials atomic.Uint64
	anytimeResumes  atomic.Uint64
	errs            atomic.Uint64
	parSum          atomic.Uint64
	parCount        atomic.Uint64
	shardChecks     atomic.Uint64
	shardMismatch   atomic.Uint64

	// Per-task-kind counters, indexed by accesscheck.TaskKind: requests
	// received, truncated results served, and cache probe outcomes.
	taskRequests    [numTaskKinds]atomic.Uint64
	taskTruncations [numTaskKinds]atomic.Uint64
	taskCacheHits   [numTaskKinds]atomic.Uint64
	taskCacheMisses [numTaskKinds]atomic.Uint64
}

// numTaskKinds sizes the per-task metric arrays.
const numTaskKinds = int(accesscheck.TaskChase) + 1

// taskKinds enumerates the kinds for metric rendering, in wire order.
var taskKinds = [numTaskKinds]accesscheck.TaskKind{
	accesscheck.TaskCheck, accesscheck.TaskContainment,
	accesscheck.TaskRelevance, accesscheck.TaskChase,
}

// New builds a Server from the config. A CacheDir that cannot be opened
// (or recovered) panics: a server told to persist must not silently run
// memory-only.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	taskChk, err := accesscheck.NewChecker()
	if err != nil {
		// NewChecker without options cannot fail; a change that makes it
		// fail must be caught loudly, not served as nil panics.
		panic(err)
	}
	// Exact results only: a truncated result is relative to this request's
	// caps and must never answer a later identical request. The rule lives
	// in cachetier.Admissible so every store in the fabric shares it.
	mem := cachetier.NewSharded(cfg.CacheSize, cfg.CacheShards, func(tr accesscheck.TaskResult) bool {
		return cachetier.Admissible(cachetier.Verdict{Truncated: tr.Truncated})
	})
	var back cachetier.Store
	if cfg.CacheDir != "" {
		dt, err := cachetier.OpenDiskTier(cachetier.DiskConfig{
			Dir:    cfg.CacheDir,
			Scheme: accesscheck.FingerprintSchemeVersion,
		})
		if err != nil {
			panic(fmt.Sprintf("server: cache dir %s: %v", cfg.CacheDir, err))
		}
		back = dt
	}
	s := &Server{
		cfg:     cfg,
		cache:   cachetier.NewTiered(mem, back, encodeDiskCheck),
		neg:     accesscheck.NewNegativeCaches(cfg.NegativeCacheBits),
		ckpts:   accesscheck.NewCheckpointStore(cfg.CacheSize),
		sem:     make(chan struct{}, cfg.Workers),
		mux:     http.NewServeMux(),
		taskChk: taskChk,
	}
	s.mux.HandleFunc("POST /v1/check", s.handleCheck)
	s.mux.HandleFunc("POST /v1/containment", s.handleContainment)
	s.mux.HandleFunc("POST /v1/relevance", s.handleRelevance)
	s.mux.HandleFunc("POST /v1/chase", s.handleChase)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/shard", s.handleShard)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP dispatches to the server's routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close flushes the resident exact check results through to the disk tier
// and closes it — the graceful-shutdown half of the write-behind contract.
// Call after the HTTP listener has drained (http.Server.Shutdown); safe on
// a memory-only server.
func (s *Server) Close() error { return s.cache.Close() }

// checkerExtras are the server-owned options appended to every check's
// wire-derived checker: process-wide stores that accelerate execution
// without entering the fingerprint.
func (s *Server) checkerExtras() []accesscheck.Option {
	if s.neg == nil {
		return nil
	}
	return []accesscheck.Option{accesscheck.WithNegativeCacheStore(s.neg)}
}

// encodeDiskCheck is the disk tier's admission-and-serialization gate:
// only exact whole check results are wire round-trippable (a TaskResult's
// engine reports are not), so only they persist — as the JSON of the
// CheckResponse they would answer with, which a restarted server can
// serve verbatim.
func encodeDiskCheck(_ string, tr accesscheck.TaskResult) ([]byte, bool) {
	if tr.Kind != accesscheck.TaskCheck || tr.Check == nil || tr.Truncated {
		return nil, false
	}
	b, err := json.Marshal(wireResult(tr.Check, false))
	return b, err == nil
}

// decodeDiskCheck decodes a persisted check entry; nil on damage (served
// as a miss — the record's CRC already screens torn writes, so this only
// guards scheme drift the version stamp missed).
func decodeDiskCheck(data []byte) *CheckResponse {
	out := new(CheckResponse)
	if err := json.Unmarshal(data, out); err != nil {
		return nil
	}
	out.Cached = true
	return out
}

// CheckRequest is the wire form of one check: a schema as textual
// declarations (accesscheck.ParseSchema syntax), a formula
// (accesscheck.ParseFormula syntax), solver options, and an optional
// per-request budget ("250ms", "2s", ...).
type CheckRequest struct {
	Relations []string      `json:"relations"`
	Methods   []string      `json:"methods,omitempty"`
	Formula   string        `json:"formula"`
	Options   *CheckOptions `json:"options,omitempty"`
	Budget    string        `json:"budget,omitempty"`
}

// CheckOptions mirrors the facade's functional options on the wire.
type CheckOptions struct {
	Engine             string   `json:"engine,omitempty"`
	Grounded           bool     `json:"grounded,omitempty"`
	IdempotentOnly     bool     `json:"idempotent_only,omitempty"`
	AllExact           bool     `json:"all_exact,omitempty"`
	ExactMethods       []string `json:"exact_methods,omitempty"`
	MaxDepth           int      `json:"max_depth,omitempty"`
	MaxPaths           int      `json:"max_paths,omitempty"`
	MaxResponseChoices int      `json:"max_response_choices,omitempty"`
	// Parallelism caps this check's exploration walkers. 0 means the
	// server's configured per-check parallelism; positive values below it
	// lower the fan-out for this check; values above it are clamped to it
	// (a request cannot grab more of the machine than the operator
	// allotted per check).
	Parallelism int `json:"parallelism,omitempty"`
}

// CheckResponse is the wire form of an accesscheck.Result.
type CheckResponse struct {
	Satisfiable     bool    `json:"satisfiable"`
	Fragment        string  `json:"fragment"`
	InFragment      bool    `json:"in_fragment"`
	Decidable       bool    `json:"decidable"`
	Engine          string  `json:"engine"`
	Truncated       bool    `json:"truncated"`
	ResponsesCapped bool    `json:"responses_capped,omitempty"`
	PathsExplored   int     `json:"paths_explored"`
	Depth           int     `json:"depth"`
	Witness         string  `json:"witness,omitempty"`
	ElapsedMS       float64 `json:"elapsed_ms"`
	Cached          bool    `json:"cached"`
	// ShardsCompleted / ShardsTotal tag a fabric coordinator's partial
	// verdict with its coverage (see accesscheck.Result); both zero on
	// whole-space answers. Completed < Total with Truncated set and
	// Satisfiable false reads as Unknown: no witness in the explored
	// region, nothing claimed about the rest.
	ShardsCompleted int `json:"shards_completed,omitempty"`
	ShardsTotal     int `json:"shards_total,omitempty"`
	// Coverage / Resumable tag anytime answers (see accesscheck.Result):
	// a Resumable response is a suspended partial whose frontier the
	// server checkpointed — re-issuing the identical request resumes it,
	// and RetryAfter suggests when (mirrored in a Retry-After header on
	// single checks). Exact answers carry Coverage 1.
	Coverage   float64 `json:"coverage,omitempty"`
	Resumable  bool    `json:"resumable,omitempty"`
	RetryAfter int     `json:"retry_after_seconds,omitempty"`
}

// BatchRequest carries many tasks; items are independent and answered in
// order. Exactly one of Requests (the original check-only form) and Items
// (mixed task kinds) must be set.
type BatchRequest struct {
	Requests []CheckRequest `json:"requests,omitempty"`
	Items    []TaskRequest  `json:"items,omitempty"`
}

// TaskRequest is one mixed-batch item: a task kind plus the matching
// request payload (which carries its own budget).
type TaskRequest struct {
	Task        string              `json:"task"`
	Check       *CheckRequest       `json:"check,omitempty"`
	Containment *ContainmentRequest `json:"containment,omitempty"`
	Relevance   *RelevanceRequest   `json:"relevance,omitempty"`
	Chase       *ChaseRequest       `json:"chase,omitempty"`
}

// BatchItem is one per-item outcome: Error, or exactly one result field
// matching the item's task kind (Result for checks, keeping the original
// check-only wire shape intact). Task echoes the kind on mixed batches.
type BatchItem struct {
	Task        string               `json:"task,omitempty"`
	Result      *CheckResponse       `json:"result,omitempty"`
	Containment *ContainmentResponse `json:"containment,omitempty"`
	Relevance   *RelevanceResponse   `json:"relevance,omitempty"`
	Chase       *ChaseResponse       `json:"chase,omitempty"`
	Error       string               `json:"error,omitempty"`
}

// BatchResponse lines up index-for-index with BatchRequest.Requests.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// errorResponse is the structured error body every non-2xx JSON endpoint
// answers with. Budget expiries additionally carry a machine-readable
// backoff: a Code naming what killed the context ("budget_exhausted",
// "shard_budget_exhausted", the legacy "deadline_exceeded" for externally
// imposed deadlines, "client_disconnected") and RetryAfter seconds,
// mirrored in a Retry-After header, so coordinator retry logic and real
// clients can back off programmatically instead of parsing prose.
type errorResponse struct {
	Error      string `json:"error"`
	Code       string `json:"code,omitempty"`
	RetryAfter int    `json:"retry_after_seconds,omitempty"`
}

// Context causes: every deadline the server imposes is armed with one of
// these via context.WithTimeoutCause, so an expired context can say whether
// the request's own budget died, a coordinator-imposed per-shard budget
// died, or the client went away — three conditions that demand different
// operator responses (raise budgets / retune shard fan-out / nothing).
//
// The causes leak beyond our own handlers: net/http surfaces the context
// CAUSE (not context.DeadlineExceeded) in the errors of requests whose
// context expired, so a coordinator whose budget dies mid-dispatch sees
// `Post ...: request budget exhausted` from the transport. Every deadline
// classifier in the fabric (BreakerFailure, retryable, recordForward) asks
// errors.Is(err, context.DeadlineExceeded) — so the sentinels answer yes
// to that question via a custom Is, keeping them deadline errors wherever
// they travel while staying distinct identities for cause mapping.
type budgetCause struct{ msg string }

func (e *budgetCause) Error() string { return e.msg }

// Is makes the sentinel interchangeable with context.DeadlineExceeded for
// classification while remaining its own identity for cause switches.
func (e *budgetCause) Is(target error) bool { return target == context.DeadlineExceeded }

var (
	errBudgetExhausted      error = &budgetCause{msg: "request budget exhausted"}
	errShardBudgetExhausted error = &budgetCause{msg: "shard budget exhausted"}
)

// retrySecs rounds a budget up to whole seconds (minimum 1): a check that
// exhausted this budget needs at least a comparable budget again.
func retrySecs(budget time.Duration) int {
	secs := int((budget + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// writeError renders err with its mapped status; budget suggests the retry
// horizon on 504s that do not carry their own.
func writeError(w http.ResponseWriter, err error, budget time.Duration) {
	status := statusOf(err)
	body := errorResponse{Error: err.Error()}
	var he *httpError
	if errors.As(err, &he) && he.code != "" {
		// An error carrying its own machine-readable code (a cause-tagged
		// expiry, the coordinator's no_healthy_workers 503) renders it.
		body.Code = he.code
		body.RetryAfter = he.retryAfter
	}
	if status == http.StatusGatewayTimeout {
		if body.Code == "" {
			body.Code = "deadline_exceeded"
		}
		if body.RetryAfter == 0 {
			body.RetryAfter = retrySecs(budget)
		}
	}
	if body.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(body.RetryAfter))
	}
	writeJSON(w, status, body)
}

// httpError is an error with a dedicated HTTP status, and optionally a
// machine-readable code plus Retry-After horizon for structured bodies.
type httpError struct {
	status     int
	err        error
	code       string
	retryAfter int
}

func (e *httpError) Error() string { return e.err.Error() }
func (e *httpError) Unwrap() error { return e.err }

func badRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, err: fmt.Errorf(format, args...)}
}

// resolveBudget picks the per-check deadline: item budget, then query
// parameter, then server default.
func (s *Server) resolveBudget(item string, r *http.Request) (time.Duration, error) {
	for _, spec := range []string{item, r.URL.Query().Get("budget")} {
		if spec == "" {
			continue
		}
		d, err := time.ParseDuration(spec)
		if err != nil {
			return 0, badRequest("bad budget %q: %v", spec, err)
		}
		if d <= 0 {
			return 0, badRequest("bad budget %q: must be positive", spec)
		}
		return d, nil
	}
	return s.cfg.DefaultBudget, nil
}

// parallelismFor resolves a check's effective walker count: the server's
// configured per-check parallelism, lowered (never raised) by the request.
func (s *Server) parallelismFor(o *CheckOptions) int {
	par := s.cfg.Parallelism
	if o != nil && o.Parallelism > 0 && o.Parallelism < par {
		par = o.Parallelism
	}
	return par
}

// checkerFor translates wire options into a Checker running at the given
// parallelism; extra options (e.g. a worker's shard restriction) are
// appended after the wire-derived ones.
func checkerFor(o *CheckOptions, parallelism int, extra ...accesscheck.Option) (*accesscheck.Checker, error) {
	opts := []accesscheck.Option{accesscheck.WithParallelism(parallelism)}
	if o != nil {
		engine, err := accesscheck.ParseEngine(o.Engine)
		if err != nil {
			return nil, err
		}
		opts = append(opts,
			accesscheck.WithEngine(engine),
			accesscheck.WithMaxDepth(o.MaxDepth),
			accesscheck.WithMaxPaths(o.MaxPaths),
			accesscheck.WithMaxResponseChoices(o.MaxResponseChoices),
		)
		if o.Grounded {
			opts = append(opts, accesscheck.WithGrounded())
		}
		if o.IdempotentOnly {
			opts = append(opts, accesscheck.WithIdempotentOnly())
		}
		if o.AllExact {
			opts = append(opts, accesscheck.WithAllExact())
		}
		if len(o.ExactMethods) > 0 {
			opts = append(opts, accesscheck.WithExactMethods(o.ExactMethods...))
		}
	}
	opts = append(opts, extra...)
	return accesscheck.NewChecker(opts...)
}

// doCheck runs one check end to end: parse, cache probe, bounded solve,
// cache admission. ctx must already carry the request's budget.
func (s *Server) doCheck(ctx context.Context, req CheckRequest) (*CheckResponse, error) {
	s.taskRequests[accesscheck.TaskCheck].Add(1)
	if req.Formula == "" {
		return nil, badRequest("missing formula")
	}
	if len(req.Relations) == 0 {
		return nil, badRequest("missing relations")
	}
	par := s.parallelismFor(req.Options)
	chk, err := checkerFor(req.Options, par, s.checkerExtras()...)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	sch, err := accesscheck.ParseSchema(req.Relations, req.Methods)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	f, err := accesscheck.ParseFormula(req.Formula)
	if err != nil {
		return nil, badRequest("%v", err)
	}

	fp := chk.Fingerprint(sch, f)
	if tr, ok := s.cache.Get(fp); ok && tr.Check != nil {
		s.taskCacheHits[accesscheck.TaskCheck].Add(1)
		return wireResult(tr.Check, true), nil
	}
	// Disk tier: a previous process's exact verdict for this fingerprint
	// survives restarts; serve it verbatim without re-solving.
	if data, ok := s.cache.Persisted(fp); ok {
		if out := decodeDiskCheck(data); out != nil {
			s.taskCacheHits[accesscheck.TaskCheck].Add(1)
			return out, nil
		}
	}
	s.taskCacheMisses[accesscheck.TaskCheck].Add(1)

	// Anytime frontier: an identical request that blew its budget earlier
	// left a suspended checkpoint under this fingerprint; resume it instead
	// of restarting from scratch.
	prev, _ := s.ckpts.Get(fp)
	if prev != nil {
		s.anytimeResumes.Add(1)
	}

	// Acquire a worker slot without outliving the budget.
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, s.ctxErr(ctx, ctx.Err())
	}
	s.inFlight.Add(1)
	// Per-request parallelism telemetry: sum/count expose the average
	// effective fan-out on /metrics without a histogram dependency. Counted
	// only once a solve actually starts — cache hits and requests whose
	// budget dies waiting for a worker slot run zero walkers and would
	// otherwise report the configured parallelism for work that never
	// explored.
	s.parSum.Add(uint64(par))
	s.parCount.Add(1)
	res, cp, err := chk.CheckAnytime(ctx, sch, f, prev)
	s.inFlight.Add(-1)
	<-s.sem

	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			// Expired with no completed shard: no honest coverage to
			// answer with, but the checkpoint's warm memo tables still
			// accelerate a retry.
			s.ckpts.Put(cp)
			return nil, s.ctxErr(ctx, err)
		}
		s.errs.Add(1)
		return nil, &httpError{status: http.StatusUnprocessableEntity, err: err}
	}
	s.checks.Add(1)
	if res.Resumable {
		// Budget blown with progress made: a coverage-tagged partial, and
		// the frontier checkpointed so the next identical request resumes.
		// Resumable answers are always Truncated — never cache-admissible.
		s.anytimePartials.Add(1)
		s.truncations.Add(1)
		s.taskTruncations[accesscheck.TaskCheck].Add(1)
		s.ckpts.Put(cp)
		return wireResult(res, false), nil
	}
	s.ckpts.Remove(fp)
	if res.Truncated {
		// Cap-relative verdict: served, counted, never cached.
		s.truncations.Add(1)
		s.taskTruncations[accesscheck.TaskCheck].Add(1)
	} else {
		s.cache.Add(fp, *checkTaskResult(res))
	}
	return wireResult(res, false), nil
}

// checkTaskResult wraps a check Result in the task envelope the cache
// stores.
func checkTaskResult(res *accesscheck.Result) *accesscheck.TaskResult {
	return &accesscheck.TaskResult{
		Kind:            accesscheck.TaskCheck,
		Verdict:         res.Satisfiable,
		Truncated:       res.Truncated,
		ShardsCompleted: res.ShardsCompleted,
		ShardsTotal:     res.ShardsTotal,
		Engine:          res.Engine.String(),
		Elapsed:         res.Elapsed,
		Check:           res,
	}
}

func wireResult(res *accesscheck.Result, cached bool) *CheckResponse {
	out := &CheckResponse{
		Satisfiable:     res.Satisfiable,
		Fragment:        res.Fragment.String(),
		InFragment:      res.InFragment,
		Decidable:       res.Decidable,
		Engine:          res.Engine.String(),
		Truncated:       res.Truncated,
		ResponsesCapped: res.ResponsesCapped,
		PathsExplored:   res.PathsExplored,
		Depth:           res.Depth,
		ElapsedMS:       float64(res.Elapsed) / float64(time.Millisecond),
		Cached:          cached,
		ShardsCompleted: res.ShardsCompleted,
		ShardsTotal:     res.ShardsTotal,
		Coverage:        res.Coverage,
		Resumable:       res.Resumable,
	}
	if res.Witness != nil {
		out.Witness = res.Witness.String()
	}
	return out
}

// ctxErr converts a context death into the error the route answers with,
// attributing it to its cause. The legacy deadlines/cancels totals keep
// their meaning ("budgets too tight" vs "client went away"); the
// cause-split counters and the returned code distinguish the server's own
// request budget from a coordinator-imposed per-shard budget from a client
// disconnect — conflating them would let ordinary disconnects inflate the
// budget alarm, and budget expiry is the one retrying helps.
func (s *Server) ctxErr(ctx context.Context, err error) error {
	cause := context.Cause(ctx)
	if cause == nil {
		cause = err
	}
	switch {
	case errors.Is(cause, errBudgetExhausted):
		s.deadlines.Add(1)
		s.budgetExpiries.Add(1)
		return &httpError{status: http.StatusGatewayTimeout, code: "budget_exhausted",
			err: fmt.Errorf("%w: %v", context.DeadlineExceeded, cause)}
	case errors.Is(cause, errShardBudgetExhausted):
		s.deadlines.Add(1)
		s.shardExpiries.Add(1)
		return &httpError{status: http.StatusGatewayTimeout, code: "shard_budget_exhausted",
			err: fmt.Errorf("%w: %v", context.DeadlineExceeded, cause)}
	case errors.Is(err, context.DeadlineExceeded):
		// An externally imposed deadline (a caller-supplied context): the
		// legacy code, no cause to blame.
		s.deadlines.Add(1)
		return err
	default:
		s.cancels.Add(1)
		s.disconnects.Add(1)
		return &httpError{status: statusClientClosedRequest, code: "client_disconnected",
			err: fmt.Errorf("%w: client disconnected", context.Canceled)}
	}
}

// statusClientClosedRequest is nginx's conventional status for a request
// abandoned by the client; there is no standard constant.
const statusClientClosedRequest = 499

func statusOf(err error) int {
	var he *httpError
	if errors.As(err, &he) {
		return he.status
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	if errors.Is(err, context.Canceled) {
		return statusClientClosedRequest
	}
	return http.StatusInternalServerError
}

// decodeBody reads the JSON body under the size cap; oversized bodies are
// rejected with 413 before they can exhaust memory, and unknown fields with
// 400 — a typo'd option name must fail loudly instead of being silently
// ignored (a misspelled "grounded" would otherwise run the wrong check).
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	return decodeStrict(w, r.Body, v)
}

// decodeStrict decodes JSON with DisallowUnknownFields, rendering the
// structured error responses every /v1/* body shares.
func decodeStrict(w http.ResponseWriter, body io.Reader, v any) bool {
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorResponse{Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
			return false
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req CheckRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	budget, err := s.resolveBudget(req.Budget, r)
	if err != nil {
		writeError(w, err, s.cfg.DefaultBudget)
		return
	}
	ctx, cancel := context.WithTimeoutCause(r.Context(), budget, errBudgetExhausted)
	defer cancel()
	res, err := s.doCheck(ctx, req)
	if err != nil {
		writeError(w, err, budget)
		return
	}
	tagResumable(w, res, budget)
	writeJSON(w, http.StatusOK, res)
}

// tagResumable stamps the retry horizon on a resumable 200: the identical
// request, re-issued after roughly the same budget, resumes the stored
// frontier. The header rides only on single-check responses; batch items
// carry the field alone.
func tagResumable(w http.ResponseWriter, res *CheckResponse, budget time.Duration) {
	if !res.Resumable {
		return
	}
	res.RetryAfter = retrySecs(budget)
	if w != nil {
		w.Header().Set("Retry-After", strconv.Itoa(res.RetryAfter))
	}
}

// checkBatchSize validates the two batch forms share one size policy;
// returns the item count or writes the error and returns -1.
func checkBatchSize(w http.ResponseWriter, req *BatchRequest, maxBatch int) int {
	if len(req.Requests) > 0 && len(req.Items) > 0 {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: `batch carries both "requests" and "items"; use one`})
		return -1
	}
	n := len(req.Requests) + len(req.Items)
	if n == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty batch"})
		return -1
	}
	if n > maxBatch {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorResponse{Error: fmt.Sprintf("batch of %d exceeds the limit of %d", n, maxBatch)})
		return -1
	}
	return n
}

// taskItemBudget names the budget field of a mixed-batch item's payload.
func (t *TaskRequest) budget() string {
	switch {
	case t.Check != nil:
		return t.Check.Budget
	case t.Containment != nil:
		return t.Containment.Budget
	case t.Relevance != nil:
		return t.Relevance.Budget
	case t.Chase != nil:
		return t.Chase.Budget
	}
	return ""
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	n := checkBatchSize(w, &req, s.cfg.MaxBatch)
	if n < 0 {
		return
	}
	serveBatch(w, r, &req, n, s.resolveBudget, s.doCheck, s.doTaskItem)
}

// BatchStreamItem is one NDJSON line of a streamed /v1/batch response: the
// item's index in the request plus its outcome. Lines arrive in completion
// order, not request order — the index is the correlation.
type BatchStreamItem struct {
	Index int `json:"index"`
	BatchItem
}

// wantsNDJSON reports whether the client asked for a streamed batch.
func wantsNDJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// serveBatch is the batch engine the standalone server and the coordinator
// share: per-item budgets anchored at arrival, bounded by whoever runs the
// items, and two response shapes. The default buffers everything into one
// BatchResponse; with "Accept: application/x-ndjson" each item streams as
// its own line the moment it completes, so slow items do not delay fast
// ones reaching the client.
func serveBatch(w http.ResponseWriter, r *http.Request, req *BatchRequest, n int,
	resolveBudget func(string, *http.Request) (time.Duration, error),
	doCheck func(context.Context, CheckRequest) (*CheckResponse, error),
	doTaskItem func(context.Context, *TaskRequest) BatchItem,
) {
	stream := wantsNDJSON(r)
	results := make([]BatchItem, n)
	var done chan int
	if stream {
		done = make(chan int, n)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if stream {
				defer func() { done <- i }()
			}
			var itemBudget string
			if req.Requests != nil {
				itemBudget = req.Requests[i].Budget
			} else {
				itemBudget = req.Items[i].budget()
			}
			budget, err := resolveBudget(itemBudget, r)
			if err != nil {
				results[i] = BatchItem{Error: err.Error()}
				return
			}
			// Deadlines are per item, all anchored at arrival: the worker
			// pool bounds actual parallelism, and an item whose budget
			// expires while queued fails fast instead of hogging a slot.
			ctx, cancel := context.WithTimeoutCause(r.Context(), budget, errBudgetExhausted)
			defer cancel()
			if req.Requests != nil {
				res, err := doCheck(ctx, req.Requests[i])
				if err != nil {
					results[i] = BatchItem{Error: err.Error()}
					return
				}
				tagResumable(nil, res, budget)
				results[i] = BatchItem{Result: res}
				return
			}
			item := doTaskItem(ctx, &req.Items[i])
			if item.Result != nil {
				tagResumable(nil, item.Result, budget)
			}
			results[i] = item
		}(i)
	}
	if !stream {
		wg.Wait()
		writeJSON(w, http.StatusOK, BatchResponse{Results: results})
		return
	}
	go func() {
		wg.Wait()
		close(done)
	}()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	// Single writer: item goroutines publish completion via the channel
	// (which orders their writes to results[i] before our read), and only
	// this loop touches the ResponseWriter.
	for i := range done {
		_ = enc.Encode(BatchStreamItem{Index: i, BatchItem: results[i]})
		if fl != nil {
			fl.Flush()
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics renders the counters in Prometheus exposition style: plain
// text, one "name value" per line, scrape-friendly without pulling in a
// client library.
// ratio renders h/(h+m) as a gauge value, 0 when nothing was probed.
func ratio(h, m uint64) float64 {
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	cs := s.cache.MemStats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "accserve_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(w, "accserve_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(w, "accserve_cache_rejected_total %d\n", cs.Rejected)
	fmt.Fprintf(w, "accserve_cache_evictions_total %d\n", cs.Evictions)
	fmt.Fprintf(w, "accserve_cache_size %d\n", cs.Size)
	fmt.Fprintf(w, "accserve_cache_capacity %d\n", cs.Capacity)
	fmt.Fprintf(w, "accserve_cache_shards %d\n", s.cache.Shards())
	fmt.Fprintf(w, "accserve_checks_total %d\n", s.checks.Load())
	fmt.Fprintf(w, "accserve_truncations_total %d\n", s.truncations.Load())
	fmt.Fprintf(w, "accserve_deadline_exceeded_total %d\n", s.deadlines.Load())
	fmt.Fprintf(w, "accserve_client_cancelled_total %d\n", s.cancels.Load())
	fmt.Fprintf(w, "accserve_budget_exhausted_total %d\n", s.budgetExpiries.Load())
	fmt.Fprintf(w, "accserve_shard_budget_exhausted_total %d\n", s.shardExpiries.Load())
	fmt.Fprintf(w, "accserve_client_disconnected_total %d\n", s.disconnects.Load())
	fmt.Fprintf(w, "accserve_anytime_partials_total %d\n", s.anytimePartials.Load())
	fmt.Fprintf(w, "accserve_anytime_resumes_total %d\n", s.anytimeResumes.Load())
	ks := s.ckpts.Stats()
	fmt.Fprintf(w, "accserve_checkpoints_size %d\n", ks.Size)
	fmt.Fprintf(w, "accserve_checkpoints_capacity %d\n", ks.Capacity)
	fmt.Fprintf(w, "accserve_checkpoints_evictions_total %d\n", ks.Evictions)
	fmt.Fprintf(w, "accserve_check_errors_total %d\n", s.errs.Load())
	fmt.Fprintf(w, "accserve_shard_checks_total %d\n", s.shardChecks.Load())
	fmt.Fprintf(w, "accserve_shard_plan_mismatches_total %d\n", s.shardMismatch.Load())
	fmt.Fprintf(w, "accserve_failpoints_fired_total %d\n", s.cfg.Failpoints.Fired())
	for _, k := range taskKinds {
		fmt.Fprintf(w, "accserve_task_requests_total{task=%q} %d\n", k.String(), s.taskRequests[k].Load())
		fmt.Fprintf(w, "accserve_task_truncations_total{task=%q} %d\n", k.String(), s.taskTruncations[k].Load())
		fmt.Fprintf(w, "accserve_task_cache_hits_total{task=%q} %d\n", k.String(), s.taskCacheHits[k].Load())
		fmt.Fprintf(w, "accserve_task_cache_misses_total{task=%q} %d\n", k.String(), s.taskCacheMisses[k].Load())
	}
	// Tiered-cache view: one unified tier-labeled family over every store,
	// plus hit-ratio gauges, so dashboards compare tiers without knowing
	// each store's legacy metric names.
	ts := s.cache.Stats()
	fmt.Fprintf(w, "accserve_cache_tier_hits_total{tier=\"memory\"} %d\n", cs.Hits)
	fmt.Fprintf(w, "accserve_cache_tier_misses_total{tier=\"memory\"} %d\n", cs.Misses)
	fmt.Fprintf(w, "accserve_cache_tier_evictions_total{tier=\"memory\"} %d\n", cs.Evictions)
	fmt.Fprintf(w, "accserve_cache_hit_ratio{tier=\"memory\"} %g\n", ratio(cs.Hits, cs.Misses))
	fmt.Fprintf(w, "accserve_cache_tier_hits_total{tier=\"disk\"} %d\n", ts.DiskHits)
	fmt.Fprintf(w, "accserve_cache_tier_misses_total{tier=\"disk\"} %d\n", ts.DiskMisses)
	fmt.Fprintf(w, "accserve_cache_hit_ratio{tier=\"disk\"} %g\n", ratio(ts.DiskHits, ts.DiskMisses))
	fmt.Fprintf(w, "accserve_cache_tier_hits_total{tier=\"checkpoint\"} %d\n", ks.Hits)
	fmt.Fprintf(w, "accserve_cache_tier_misses_total{tier=\"checkpoint\"} %d\n", ks.Misses)
	fmt.Fprintf(w, "accserve_cache_tier_evictions_total{tier=\"checkpoint\"} %d\n", ks.Evictions)
	fmt.Fprintf(w, "accserve_cache_hit_ratio{tier=\"checkpoint\"} %g\n", ratio(ks.Hits, ks.Misses))
	fmt.Fprintf(w, "accserve_cache_disk_flushed_total %d\n", ts.Flushed)
	if ds, ok := s.cache.DiskStats(); ok {
		fmt.Fprintf(w, "accserve_cache_disk_records %d\n", ds.Records)
		fmt.Fprintf(w, "accserve_cache_disk_bytes %d\n", ds.Bytes)
		fmt.Fprintf(w, "accserve_cache_disk_writes_total %d\n", ds.Writes)
		fmt.Fprintf(w, "accserve_cache_disk_deletes_total %d\n", ds.Deletes)
		fmt.Fprintf(w, "accserve_cache_disk_corrupt_tails_total %d\n", ds.CorruptTails)
		fmt.Fprintf(w, "accserve_cache_disk_scheme_discards_total %d\n", ds.SchemeDiscards)
	}
	if s.neg != nil {
		// The negative cache's "hit" is a definite-absence answer: the test
		// that skipped the memo's lock. Misses are tests that fell through.
		for _, e := range []struct {
			name string
			nc   *cachetier.NegativeCache
		}{{"solver", s.neg.Solver}, {"emptiness", s.neg.Emptiness}} {
			engine, ns := e.name, e.nc.Stats()
			fmt.Fprintf(w, "accserve_cache_tier_hits_total{tier=\"negative\",engine=%q} %d\n", engine, ns.Definite)
			fmt.Fprintf(w, "accserve_cache_tier_misses_total{tier=\"negative\",engine=%q} %d\n", engine, ns.Tests-ns.Definite)
			fmt.Fprintf(w, "accserve_cache_hit_ratio{tier=\"negative\",engine=%q} %g\n", engine, ratio(ns.Definite, ns.Tests-ns.Definite))
			fmt.Fprintf(w, "accserve_negative_cache_bits{engine=%q} %d\n", engine, ns.Bits)
			fmt.Fprintf(w, "accserve_negative_cache_set_bits{engine=%q} %d\n", engine, ns.SetBits)
			fmt.Fprintf(w, "accserve_negative_cache_inserts_total{engine=%q} %d\n", engine, ns.Inserts)
			fmt.Fprintf(w, "accserve_negative_cache_fp_estimate{engine=%q} %g\n", engine, ns.EstFP)
		}
	}
	fmt.Fprintf(w, "accserve_in_flight %d\n", s.inFlight.Load())
	fmt.Fprintf(w, "accserve_workers %d\n", s.cfg.Workers)
	fmt.Fprintf(w, "accserve_workers_busy %d\n", len(s.sem))
	fmt.Fprintf(w, "accserve_parallelism %d\n", s.cfg.Parallelism)
	fmt.Fprintf(w, "accserve_request_parallelism_sum %d\n", s.parSum.Load())
	fmt.Fprintf(w, "accserve_request_parallelism_count %d\n", s.parCount.Load())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
