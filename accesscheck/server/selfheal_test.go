package server

// Self-healing fabric tests: dynamic membership over real HTTP joins,
// mid-batch worker death healed by a replacement join (no coordinator
// restart), deterministic coverage-tagged partial answers, the structured
// 503 when nothing can accept work, and worker-side failpoints.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"accltl/accesscheck"
	"accltl/accesscheck/fabric"
)

// joinWorker registers a worker URL with a coordinator through the real
// POST /v1/join endpoint, as the accserve -join heartbeat would.
func joinWorker(t *testing.T, coordURL, workerURL, ttl string) fabric.JoinResponse {
	t.Helper()
	resp, body := postJSON(t, coordURL+"/v1/join", fabric.JoinRequest{URL: workerURL, TTL: ttl})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join %s: status %d: %s", workerURL, resp.StatusCode, body)
	}
	var jr fabric.JoinResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	return jr
}

// workersView fetches the GET /v1/workers admin view.
func workersView(t *testing.T, coordURL string) struct {
	Workers     []fabric.WorkerStatus `json:"workers"`
	Members     int                   `json:"members"`
	Permanent   int                   `json:"permanent"`
	Joins       uint64                `json:"joins_total"`
	Expirations uint64                `json:"expirations"`
} {
	t.Helper()
	resp, err := http.Get(coordURL + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/workers: status %d", resp.StatusCode)
	}
	var view struct {
		Workers     []fabric.WorkerStatus `json:"workers"`
		Members     int                   `json:"members"`
		Permanent   int                   `json:"permanent"`
		Joins       uint64                `json:"joins_total"`
		Expirations uint64                `json:"expirations"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view
}

// TestCoordinatorDynamicMembership: a coordinator born with an EMPTY
// membership table serves checks as soon as workers self-register via
// /v1/join, and the answers match single-process verdicts.
func TestCoordinatorDynamicMembership(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(coord)
	defer ts.Close()

	// Before anyone joins, work is refused with the structured 503.
	resp, body := postJSON(t, ts.URL+"/v1/check", checkReq(satFormula))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty fabric: status %d, want 503: %s", resp.StatusCode, body)
	}

	w1 := newTestServer(t, Config{})
	w2 := newTestServer(t, Config{})
	joinWorker(t, ts.URL, w1.URL, "1m")
	joinWorker(t, ts.URL, w2.URL, "1m")

	view := workersView(t, ts.URL)
	if view.Members != 2 || view.Permanent != 0 || view.Joins != 2 {
		t.Fatalf("membership after two joins = %+v", view)
	}

	for _, formula := range []string{satFormula, unsatFormula} {
		req := checkReq(formula)
		ref := referenceResult(t, req)
		resp, body := postJSON(t, ts.URL+"/v1/check", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", formula[:12], resp.StatusCode, body)
		}
		var out CheckResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		assertEquivalent(t, formula[:12], out, ref)
		if out.ShardsTotal > 0 && out.ShardsCompleted != out.ShardsTotal {
			t.Errorf("%s: coverage %d/%d on a healthy fabric", formula[:12], out.ShardsCompleted, out.ShardsTotal)
		}
	}
}

// TestReplacementJoinHealsFabricMidBatch is the golden self-healing
// scenario: a worker dies mid-batch, a fresh worker joins via /v1/join
// with no coordinator restart, and the fabric recovers. Every answered
// item must either match the single-process verdict exactly (full cover)
// or honestly report partial coverage: Truncated with ShardsCompleted <
// ShardsTotal.
func TestReplacementJoinHealsFabricMidBatch(t *testing.T) {
	alive := newTestServer(t, Config{})
	dying := &dyingWorker{inner: New(Config{})}
	dw := httptest.NewServer(dying)
	defer dw.Close()

	coord, err := NewCoordinator(CoordinatorConfig{
		Retries:    1,
		Backoff:    5 * time.Millisecond,
		HedgeAfter: 50 * time.Millisecond,
		Breaker:    fabric.BreakerConfig{Threshold: 1, Cooldown: time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(coord)
	defer ts.Close()

	// Both workers arrive dynamically — nothing about this fabric was
	// configured at construction time.
	joinWorker(t, ts.URL, alive.URL, "1m")
	joinWorker(t, ts.URL, dw.URL, "1m")

	refSat := referenceResult(t, checkReq(satFormula))
	refUnsat := referenceResult(t, checkReq(unsatFormula))
	refFor := func(i int) *accesscheck.Result {
		if i%2 == 0 {
			return refSat
		}
		return refUnsat
	}

	// Warm run with both up so slices genuinely spread over both workers.
	if resp, body := postJSON(t, ts.URL+"/v1/check", checkReq(satFormula)); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm check: status %d: %s", resp.StatusCode, body)
	}

	dying.dead.Store(true)

	batch := BatchRequest{Requests: []CheckRequest{
		checkReq(satFormula), checkReq(unsatFormula),
		checkReq(satFormula), checkReq(unsatFormula),
	}}
	resp, body := postJSON(t, ts.URL+"/v1/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch during death: status %d: %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	for i, r := range out.Results {
		if r.Result == nil {
			t.Errorf("item %d failed despite a live worker: %s", i, r.Error)
			continue
		}
		full := r.Result.ShardsTotal == 0 || r.Result.ShardsCompleted == r.Result.ShardsTotal
		if full {
			assertEquivalent(t, fmt.Sprintf("death item %d", i), *r.Result, refFor(i))
		} else if !r.Result.Truncated {
			t.Errorf("item %d: partial cover %d/%d without Truncated",
				i, r.Result.ShardsCompleted, r.Result.ShardsTotal)
		}
	}

	// A replacement self-registers — the coordinator keeps running.
	replacement := newTestServer(t, Config{})
	joinWorker(t, ts.URL, replacement.URL, "1m")
	view := workersView(t, ts.URL)
	if view.Members != 3 {
		t.Fatalf("members after replacement join = %d, want 3", view.Members)
	}

	// With the replacement in the ring (and the dead worker's breaker open,
	// denying it without a wire round-trip), every item is exact again.
	resp, body = postJSON(t, ts.URL+"/v1/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch after heal: status %d: %s", resp.StatusCode, body)
	}
	out = BatchResponse{}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	for i, r := range out.Results {
		if r.Result == nil {
			t.Errorf("healed item %d failed: %s", i, r.Error)
			continue
		}
		if r.Result.ShardsTotal > 0 && r.Result.ShardsCompleted != r.Result.ShardsTotal {
			t.Errorf("healed item %d: coverage %d/%d, want full",
				i, r.Result.ShardsCompleted, r.Result.ShardsTotal)
			continue
		}
		assertEquivalent(t, fmt.Sprintf("healed item %d", i), *r.Result, refFor(i))
	}
}

// shardIndexFail wraps a worker and, while armed, 500s every /v1/shard
// request whose assignment covers the target canonical index. All other
// traffic passes through.
type shardIndexFail struct {
	inner  http.Handler
	target int
	armed  atomic.Bool
}

func (s *shardIndexFail) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.armed.Load() && r.URL.Path == "/v1/shard" {
		data, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		r.Body = io.NopCloser(bytes.NewReader(data))
		var sh fabric.Shard
		if json.Unmarshal(data, &sh) == nil {
			for _, ref := range sh.Shards {
				if ref.Index == s.target {
					http.Error(w, "induced shard failure", http.StatusInternalServerError)
					return
				}
			}
		}
	}
	s.inner.ServeHTTP(w, r)
}

// planAndGroups mirrors the coordinator's affinity grouping for the given
// request over two worker URLs: which worker owns each canonical shard.
func planAndGroups(t *testing.T, req CheckRequest, workers []string) ([]accesscheck.ShardID, map[string][]int) {
	t.Helper()
	chk, err := checkerFor(req.Options, 1)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := accesscheck.ParseSchema(req.Relations, req.Methods)
	if err != nil {
		t.Fatal(err)
	}
	f, err := accesscheck.ParseFormula(req.Formula)
	if err != nil {
		t.Fatal(err)
	}
	plan, _, err := chk.ShardPlan(context.Background(), sch, f)
	if err != nil {
		t.Fatal(err)
	}
	fp := chk.Fingerprint(sch, f)
	router := fabric.NewRouter(workers)
	groups := make(map[string][]int)
	for _, sh := range plan {
		owner := router.Sequence(fabric.RouteKey(fp, sh.Key), len(workers))[0]
		groups[owner] = append(groups[owner], sh.Index)
	}
	return plan, groups
}

// TestCoordinatorPartialAnswerDeterministic: when one shard's slices fail
// on EVERY worker, the coordinator degrades to a coverage-tagged partial —
// 200, Satisfiable=false, Truncated, ShardsCompleted < ShardsTotal (the
// Unknown shape) — and upgrades back to the exact verdict once capacity
// returns, proving the partial was never cached as the answer.
func TestCoordinatorPartialAnswerDeterministic(t *testing.T) {
	req := checkReq(unsatFormula)

	// The wrapped pair must split the plan into at least two affinity
	// groups, or losing the target shard would lose every merged part.
	// Grouping depends on the consistent hash of the (random-port) worker
	// URLs, so redraw the pair until the split happens.
	var f1, f2 *shardIndexFail
	var ws [2]*httptest.Server
	var target int
	found := false
	for attempt := 0; attempt < 30 && !found; attempt++ {
		f1 = &shardIndexFail{inner: New(Config{})}
		f2 = &shardIndexFail{inner: New(Config{})}
		ws[0] = httptest.NewServer(f1)
		ws[1] = httptest.NewServer(f2)
		plan, groups := planAndGroups(t, req, []string{ws[0].URL, ws[1].URL})
		if len(plan) >= 2 && len(groups) >= 2 {
			// Fail a shard from the smaller group so the other group's
			// verdicts survive the degradation.
			smallest := -1
			for _, idxs := range groups {
				if smallest < 0 || len(idxs) < smallest {
					smallest = len(idxs)
					target = idxs[0]
				}
			}
			found = true
			break
		}
		ws[0].Close()
		ws[1].Close()
	}
	if !found {
		t.Skip("plan has fewer than two shards; partial coverage is unreachable")
	}
	defer ws[0].Close()
	defer ws[1].Close()
	f1.target, f2.target = target, target
	f1.armed.Store(true)
	f2.armed.Store(true)

	coord, err := NewCoordinator(CoordinatorConfig{
		Workers: []string{ws[0].URL, ws[1].URL},
		Retries: -1, // no per-worker retries: the failover chain is the test
		Breaker: fabric.BreakerConfig{Threshold: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(coord)
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/check", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded check: status %d, want 200 partial: %s", resp.StatusCode, body)
	}
	var out CheckResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Satisfiable {
		t.Fatalf("partial answer satisfiable: %+v", out)
	}
	if !out.Truncated {
		t.Error("partial unsat answer not marked Truncated (Unknown)")
	}
	if out.ShardsTotal == 0 || out.ShardsCompleted >= out.ShardsTotal {
		t.Errorf("coverage = %d/%d, want a strict partial", out.ShardsCompleted, out.ShardsTotal)
	}
	m := metrics(t, ts)
	if m["accserve_coordinator_partial_answers_total"] == 0 {
		t.Error("partial answer not counted in metrics")
	}

	// Capacity returns: the same check now answers exactly, matching the
	// single-process verdict — the partial did not poison any cache.
	f1.armed.Store(false)
	f2.armed.Store(false)
	ref := referenceResult(t, req)
	resp, body = postJSON(t, ts.URL+"/v1/check", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered check: status %d: %s", resp.StatusCode, body)
	}
	out = CheckResponse{}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.ShardsCompleted != out.ShardsTotal {
		t.Fatalf("recovered coverage = %d/%d, want full", out.ShardsCompleted, out.ShardsTotal)
	}
	assertEquivalent(t, "recovered", out, ref)
}

// TestCoordinatorNoHealthyWorkers503: both empty membership and an
// all-breakers-open fabric answer the structured 503 with a Retry-After.
func TestCoordinatorNoHealthyWorkers503(t *testing.T) {
	t.Run("empty membership", func(t *testing.T) {
		coord, err := NewCoordinator(CoordinatorConfig{})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(coord)
		defer ts.Close()
		resp, body := postJSON(t, ts.URL+"/v1/check", checkReq(satFormula))
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("503 without a Retry-After header")
		}
		var e errorResponse
		if err := json.Unmarshal(body, &e); err != nil {
			t.Fatal(err)
		}
		if e.Code != "no_healthy_workers" {
			t.Errorf("error code = %q, want no_healthy_workers", e.Code)
		}
		if e.RetryAfter < 1 {
			t.Errorf("retry_after_seconds = %d, want >= 1", e.RetryAfter)
		}
		m := metrics(t, ts)
		if m["accserve_coordinator_no_workers_total"] == 0 {
			t.Error("refusal not counted in accserve_coordinator_no_workers_total")
		}
	})

	t.Run("all breakers open", func(t *testing.T) {
		// One member whose server is gone: the first check opens its
		// threshold-1 breaker, the second is refused locally with the
		// cooldown-derived Retry-After.
		dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
		deadURL := dead.URL
		dead.Close()
		coord, err := NewCoordinator(CoordinatorConfig{
			Workers: []string{deadURL},
			Retries: -1,
			Breaker: fabric.BreakerConfig{Threshold: 1, Cooldown: 30 * time.Second},
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(coord)
		defer ts.Close()

		resp, body := postJSON(t, ts.URL+"/v1/check", checkReq(satFormula))
		if resp.StatusCode != http.StatusBadGateway {
			t.Fatalf("first check: status %d, want 502: %s", resp.StatusCode, body)
		}
		resp, body = postJSON(t, ts.URL+"/v1/check", checkReq(satFormula))
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("second check: status %d, want 503: %s", resp.StatusCode, body)
		}
		var e errorResponse
		if err := json.Unmarshal(body, &e); err != nil {
			t.Fatal(err)
		}
		if e.Code != "no_healthy_workers" {
			t.Errorf("error code = %q, want no_healthy_workers", e.Code)
		}
		// The hint derives from the 30s cooldown, minus the instants the
		// first check burned.
		if e.RetryAfter < 25 || e.RetryAfter > 30 {
			t.Errorf("retry_after_seconds = %d, want ~30 (breaker cooldown)", e.RetryAfter)
		}
	})
}

// TestLeaseExpiryEvictsWorker: a short real-time lease granted over
// /v1/join lapses without renewal and the member leaves the admin view.
func TestLeaseExpiryEvictsWorker(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(coord)
	defer ts.Close()

	w := newTestServer(t, Config{})
	jr := joinWorker(t, ts.URL, w.URL, "150ms")
	if jr.Granted != "150ms" {
		t.Fatalf("granted = %q, want 150ms", jr.Granted)
	}
	if view := workersView(t, ts.URL); view.Members != 1 {
		t.Fatalf("members right after join = %d", view.Members)
	}
	time.Sleep(250 * time.Millisecond)
	view := workersView(t, ts.URL)
	if view.Members != 0 || view.Expirations != 1 {
		t.Fatalf("after lease lapse: members=%d expirations=%d, want 0/1",
			view.Members, view.Expirations)
	}

	// Malformed TTLs are rejected at the endpoint.
	resp, _ := postJSON(t, ts.URL+"/v1/join", fabric.JoinRequest{URL: w.URL, TTL: "soonish"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad ttl: status %d, want 400", resp.StatusCode)
	}
}

// TestWorkerShardFailpoint: a worker armed with worker.shard=err500:1
// injects exactly one 500, then serves normally, and the firing shows up
// in /metrics.
func TestWorkerShardFailpoint(t *testing.T) {
	fps, err := fabric.ParseFailpoints("worker.shard=err500:1")
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, Config{Failpoints: fps})

	req := checkReq(unsatFormula)
	sch, _ := accesscheck.ParseSchema(req.Relations, req.Methods)
	f, _ := accesscheck.ParseFormula(req.Formula)
	chk, err := accesscheck.NewChecker()
	if err != nil {
		t.Fatal(err)
	}
	plan, _, err := chk.ShardPlan(context.Background(), sch, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) == 0 {
		t.Skip("empty plan")
	}
	wire := &fabric.Shard{
		Version:   fabric.WireVersion,
		Relations: req.Relations,
		Methods:   req.Methods,
		Formula:   req.Formula,
		PlanSize:  len(plan),
		Shards:    []fabric.ShardRef{{Index: 0, Key: plan[0].Key, WholeAccess: plan[0].WholeAccess}},
	}
	resp, body := postJSON(t, ts.URL+"/v1/shard", wire)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("armed shard: status %d, want injected 500: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/shard", wire)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("disarmed shard: status %d: %s", resp.StatusCode, body)
	}
	var part fabric.ShardResult
	if err := json.Unmarshal(body, &part); err != nil {
		t.Fatal(err)
	}
	if part.ShardsCompleted != 1 || part.ShardsTotal != len(plan) {
		t.Errorf("worker coverage = %d/%d, want 1/%d", part.ShardsCompleted, part.ShardsTotal, len(plan))
	}
	if m := metrics(t, ts); m["accserve_failpoints_fired_total"] != 1 {
		t.Errorf("failpoints fired = %d, want 1", m["accserve_failpoints_fired_total"])
	}
}
