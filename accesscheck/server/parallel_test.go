package server

import (
	"encoding/json"
	"net/http"
	"runtime"
	"testing"
)

// TestParallelismConfigAndMetrics: the configured per-check parallelism is
// applied, exported on /metrics, and per-request overrides can lower but
// never raise it.
func TestParallelismConfigAndMetrics(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2, Parallelism: 3})

	// Default request: runs at the server's configured parallelism.
	resp, body := postJSON(t, ts.URL+"/v1/check", checkReq(satFormula))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out CheckResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Satisfiable {
		t.Errorf("parallel solve changed the verdict: %+v", out)
	}
	m := metrics(t, ts)
	if m["accserve_parallelism"] != 3 {
		t.Errorf("accserve_parallelism = %d, want 3", m["accserve_parallelism"])
	}
	if m["accserve_workers_busy"] != 0 {
		t.Errorf("accserve_workers_busy = %d with no solve in flight", m["accserve_workers_busy"])
	}
	if m["accserve_request_parallelism_count"] != 1 || m["accserve_request_parallelism_sum"] != 3 {
		t.Errorf("request parallelism sum/count = %d/%d, want 3/1",
			m["accserve_request_parallelism_sum"], m["accserve_request_parallelism_count"])
	}

	// A request may lower its own fan-out...
	req := checkReq(unsatFormula)
	req.Options = &CheckOptions{Parallelism: 1}
	if resp, body := postJSON(t, ts.URL+"/v1/check", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	m = metrics(t, ts)
	if m["accserve_request_parallelism_sum"] != 4 {
		t.Errorf("after parallelism=1 override: sum = %d, want 4", m["accserve_request_parallelism_sum"])
	}

	// ...but not raise it above the operator's per-check limit (grounded
	// changes the fingerprint, so this is a fresh solve, not a cache hit).
	req = checkReq(unsatFormula)
	req.Options = &CheckOptions{Parallelism: 99, Grounded: true}
	if resp, body := postJSON(t, ts.URL+"/v1/check", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	m = metrics(t, ts)
	if m["accserve_request_parallelism_sum"] != 7 {
		t.Errorf("after parallelism=99 override: sum = %d, want 7 (clamped to 3)", m["accserve_request_parallelism_sum"])
	}
	if m["accserve_request_parallelism_count"] != 3 {
		t.Errorf("request count = %d, want 3", m["accserve_request_parallelism_count"])
	}

	// Cache hits run zero walkers and must not move the fan-out telemetry.
	if resp, body := postJSON(t, ts.URL+"/v1/check", checkReq(satFormula)); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	m = metrics(t, ts)
	if m["accserve_request_parallelism_sum"] != 7 || m["accserve_request_parallelism_count"] != 3 {
		t.Errorf("cache hit moved fan-out telemetry: sum/count = %d/%d, want 7/3",
			m["accserve_request_parallelism_sum"], m["accserve_request_parallelism_count"])
	}
}

// TestParallelismDefaultRespectsMachine: with no explicit setting, the
// derived per-check parallelism keeps workers × parallelism ≤ GOMAXPROCS
// (the documented default interaction of the two knobs).
func TestParallelismDefaultRespectsMachine(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 64} {
		cfg := Config{Workers: workers}.withDefaults()
		if cfg.Parallelism < 1 {
			t.Errorf("workers=%d: derived parallelism %d < 1", workers, cfg.Parallelism)
		}
		if cfg.Workers*cfg.Parallelism > runtime.GOMAXPROCS(0) && cfg.Parallelism != 1 {
			t.Errorf("workers=%d: derived workers×parallelism = %d×%d exceeds GOMAXPROCS=%d",
				workers, cfg.Workers, cfg.Parallelism, runtime.GOMAXPROCS(0))
		}
	}
	// An explicit value is taken as given, even if it oversubscribes.
	cfg := Config{Workers: 4, Parallelism: 8}.withDefaults()
	if cfg.Parallelism != 8 {
		t.Errorf("explicit parallelism rewritten to %d", cfg.Parallelism)
	}
}

// TestParallelismCacheSharedAcrossFanout: results computed at one
// parallelism serve identical checks at another (Fingerprint excludes the
// knob), so the cache stays shared.
func TestParallelismCacheSharedAcrossFanout(t *testing.T) {
	ts := newTestServer(t, Config{Parallelism: 4})
	if resp, body := postJSON(t, ts.URL+"/v1/check", checkReq(satFormula)); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	req := checkReq(satFormula)
	req.Options = &CheckOptions{Parallelism: 1}
	resp, body := postJSON(t, ts.URL+"/v1/check", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out CheckResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Cached {
		t.Error("identical check at a different parallelism missed the cache")
	}
}
