package accesscheck

// The task-generic face of the facade. Checker.Check decides AccLTL
// satisfiability; the paper's surface is wider — query containment
// (Chandra–Merlin homomorphisms, Proposition 4.11 datalog expansions,
// Example 2.2 containment under access patterns), relevance of accesses
// (Li's accessible-part datalog program, Example 2.3 long-term relevance)
// and FD+ID implication via the chase. A Task names one of those problems
// plus its canonical inputs; Checker.Do runs it and answers a TaskResult —
// one envelope (verdict, truncation, stats, engine) for every kind, so the
// cache, the batch runner, the server routes and the CLI can treat all four
// uniformly.
//
// TaskCheck wraps today's Check pipeline unchanged: Do on a check task calls
// Check with the checker's options and embeds the identical Result. The
// other kinds are self-contained — their payload carries everything that
// affects the verdict, and the checker's check-pipeline options (engine,
// path restrictions, bounds) deliberately do not leak into them; see
// FingerprintTask for the cache-identity consequences.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"accltl/internal/datalog"
	"accltl/internal/deps"
	"accltl/internal/fo"
	"accltl/internal/instance"
	"accltl/internal/relevance"
)

// Re-exports for task inputs, so consumers build tasks without importing
// internal packages.
type (
	// Value is one typed constant of an instance (build with Str/Int/Bool).
	Value = instance.Value
	// Tuple is an ordered list of values.
	Tuple = instance.Tuple
	// DatalogProgram is a datalog program with a goal predicate (build with
	// ParseProgram).
	DatalogProgram = datalog.Program
	// DatalogRule is one rule of a DatalogProgram.
	DatalogRule = datalog.Rule
	// FD is a functional dependency R: Source → Target (positions 0-based).
	FD = deps.FD
	// ID is an inclusion dependency SrcRel[SrcPos] ⊆ DstRel[DstPos].
	ID = deps.ID
)

// Str builds a string constant.
func Str(v string) Value { return instance.Str(v) }

// Int builds an integer constant.
func Int(v int64) Value { return instance.Int(v) }

// Bool builds a boolean constant.
func Bool(v bool) Value { return instance.Bool(v) }

// NewInstance builds an empty instance over the schema.
func NewInstance(sch *Schema) *Instance { return instance.NewInstance(sch) }

// TrueSentence is the always-true first-order sentence (the ⊤ letter guard
// of an automaton edge, for example).
func TrueSentence() Sentence { return fo.Truth{Val: true} }

// TaskKind names one of the paper's decision problems the facade serves.
type TaskKind int

const (
	// TaskCheck is AccLTL satisfiability — the original Check pipeline.
	TaskCheck TaskKind = iota
	// TaskContainment is query containment (UCQ, datalog, or under access
	// patterns; see ContainmentMode).
	TaskContainment
	// TaskRelevance is access relevance: the accessible part / maximal
	// answer (Li's datalog program) or long-term relevance of one access
	// (Example 2.3).
	TaskRelevance
	// TaskChase is FD+ID implication via the chase (Γ ⊨ σ).
	TaskChase
)

// String names the kind as the wire format and CLI spell it.
func (k TaskKind) String() string {
	switch k {
	case TaskCheck:
		return "check"
	case TaskContainment:
		return "containment"
	case TaskRelevance:
		return "relevance"
	case TaskChase:
		return "chase"
	default:
		return fmt.Sprintf("TaskKind(%d)", int(k))
	}
}

// ParseTaskKind reads a kind name as printed by TaskKind.String; the empty
// string means TaskCheck.
func ParseTaskKind(s string) (TaskKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "check":
		return TaskCheck, nil
	case "containment":
		return TaskContainment, nil
	case "relevance":
		return TaskRelevance, nil
	case "chase":
		return TaskChase, nil
	default:
		return TaskCheck, fmt.Errorf("accesscheck: unknown task kind %q (want check, containment, relevance or chase)", s)
	}
}

// ContainmentMode selects the containment engine.
type ContainmentMode int

const (
	// ContainUCQ decides Q1 ⊆ Q2 for positive queries by Chandra–Merlin
	// canonical-database homomorphism. Exact.
	ContainUCQ ContainmentMode = iota
	// ContainDatalog decides Program ⊆ Q2 by Proposition 4.11 proof-tree
	// expansions: refutations exact, confirmations exact iff every
	// expansion fit within the depth bound.
	ContainDatalog
	// ContainAccess decides Q1 ⊆ Q2 relative to a schema's access patterns
	// over grounded paths (Example 2.2), by bounded AccLTL search:
	// refutations (a counterexample path) exact, confirmations
	// depth-bound-relative.
	ContainAccess
)

// String names the mode as the wire format spells it.
func (m ContainmentMode) String() string {
	switch m {
	case ContainUCQ:
		return "ucq"
	case ContainDatalog:
		return "datalog"
	case ContainAccess:
		return "access"
	default:
		return fmt.Sprintf("ContainmentMode(%d)", int(m))
	}
}

// ParseContainmentMode reads a mode name; the empty string means ContainUCQ.
func ParseContainmentMode(s string) (ContainmentMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "ucq":
		return ContainUCQ, nil
	case "datalog":
		return ContainDatalog, nil
	case "access":
		return ContainAccess, nil
	default:
		return ContainUCQ, fmt.Errorf("accesscheck: unknown containment mode %q (want ucq, datalog or access)", s)
	}
}

// CheckTask is the TaskCheck payload: the (schema, formula) pair Check
// takes. Unlike the other kinds, its verdict also depends on the checker's
// options — it is the one task the Checker configuration applies to.
type CheckTask struct {
	Schema  *Schema
	Formula Formula
}

// ContainmentTask is the TaskContainment payload. The fields used depend on
// Mode: ContainUCQ reads Q1/Q2; ContainDatalog reads Program/Q2/Depth;
// ContainAccess reads Schema/Q1/Q2/Seed/Depth.
type ContainmentTask struct {
	Mode ContainmentMode
	// Q1 and Q2 are positive first-order sentences; containment asks
	// Q1 ⊆ Q2 (datalog mode: Program ⊆ Q2).
	Q1, Q2 Sentence
	// Program is the left-hand side in datalog mode.
	Program *DatalogProgram
	// Depth bounds the search: the unfolding depth in datalog mode (0 =
	// program-derived default), the path depth in access mode (0 = derived).
	Depth int
	// Schema supplies the access patterns in access mode.
	Schema *Schema
	// Seed is the initially known instance in access mode (nil = accesses
	// must start from input-free methods).
	Seed *Instance
}

// RelevanceTask is the TaskRelevance payload. Two modes share it:
//
//   - Probe != "": long-term relevance (Example 2.3) of the boolean access
//     (Probe, Binding) to Query, searched over access paths from the empty
//     instance. Grounded/MaxDepth/Universe tune the search.
//   - Probe == "": accessible part and maximal answer (Li's program) —
//     Hidden is the concealed instance, Seed the initially known values,
//     and the verdict is whether Query holds on the accessible part.
type RelevanceTask struct {
	Schema *Schema
	// Probe names the boolean access method whose relevance is asked;
	// empty selects accessible-part mode.
	Probe string
	// Binding is the probe's input tuple.
	Binding Tuple
	// Query is the boolean positive query under examination (required).
	Query Sentence
	// Hidden and Seed drive accessible-part mode.
	Hidden *Instance
	Seed   *Instance
	// Grounded restricts the long-term-relevance search to grounded paths.
	Grounded bool
	// MaxDepth bounds the long-term-relevance search (0 = derived).
	MaxDepth int
	// Universe overrides the witness universe of the long-term-relevance
	// search.
	Universe *Instance
}

// ChaseTask is the TaskChase payload: does Γ = FDs ∪ IDs imply Sigma?
type ChaseTask struct {
	// Arities gives the arity of every relation the dependencies mention.
	Arities map[string]int
	FDs     []FD
	IDs     []ID
	Sigma   FD
	// StepBudget caps chase steps (0 = 10000). FD+ID implication is
	// undecidable, so an exhausted budget answers Unknown.
	StepBudget int
}

// Task is one unit of facade work: a kind plus exactly the matching payload.
type Task struct {
	Kind        TaskKind
	Check       *CheckTask
	Containment *ContainmentTask
	Relevance   *RelevanceTask
	Chase       *ChaseTask
}

// NewCheckTask wraps a (schema, formula) pair as a Task.
func NewCheckTask(sch *Schema, f Formula) *Task {
	return &Task{Kind: TaskCheck, Check: &CheckTask{Schema: sch, Formula: f}}
}

// NewUCQContainmentTask asks Q1 ⊆ Q2 for positive queries.
func NewUCQContainmentTask(q1, q2 Sentence) *Task {
	return &Task{Kind: TaskContainment, Containment: &ContainmentTask{Mode: ContainUCQ, Q1: q1, Q2: q2}}
}

// NewDatalogContainmentTask asks Program ⊆ q up to the unfolding depth
// (0 = program-derived default).
func NewDatalogContainmentTask(p *DatalogProgram, q Sentence, depth int) *Task {
	return &Task{Kind: TaskContainment, Containment: &ContainmentTask{Mode: ContainDatalog, Program: p, Q2: q, Depth: depth}}
}

// NewAccessContainmentTask asks Q1 ⊆ Q2 under the schema's access patterns
// (Example 2.2), searching grounded paths from seed up to depth.
func NewAccessContainmentTask(sch *Schema, q1, q2 Sentence, seed *Instance, depth int) *Task {
	return &Task{Kind: TaskContainment, Containment: &ContainmentTask{
		Mode: ContainAccess, Schema: sch, Q1: q1, Q2: q2, Seed: seed, Depth: depth}}
}

// NewRelevanceTask wraps a relevance payload as a Task.
func NewRelevanceTask(rt *RelevanceTask) *Task {
	return &Task{Kind: TaskRelevance, Relevance: rt}
}

// NewChaseTask wraps a chase payload as a Task.
func NewChaseTask(ct *ChaseTask) *Task {
	return &Task{Kind: TaskChase, Chase: ct}
}

// Validate checks that the task is well-formed: the payload matching Kind is
// set (and only that one), and its per-kind requirements hold.
func (t *Task) Validate() error {
	if t == nil {
		return fmt.Errorf("accesscheck: nil Task")
	}
	set := 0
	if t.Check != nil {
		set++
	}
	if t.Containment != nil {
		set++
	}
	if t.Relevance != nil {
		set++
	}
	if t.Chase != nil {
		set++
	}
	if set != 1 {
		return fmt.Errorf("accesscheck: Task must carry exactly one payload, has %d", set)
	}
	switch t.Kind {
	case TaskCheck:
		if t.Check == nil {
			return fmt.Errorf("accesscheck: %s task without Check payload", t.Kind)
		}
		if t.Check.Schema == nil {
			return fmt.Errorf("accesscheck: check task: nil schema")
		}
		if t.Check.Formula == nil {
			return fmt.Errorf("accesscheck: check task: nil formula")
		}
	case TaskContainment:
		ct := t.Containment
		if ct == nil {
			return fmt.Errorf("accesscheck: %s task without Containment payload", t.Kind)
		}
		if ct.Depth < 0 {
			return fmt.Errorf("accesscheck: containment task: negative depth %d", ct.Depth)
		}
		switch ct.Mode {
		case ContainUCQ:
			if ct.Q1 == nil || ct.Q2 == nil {
				return fmt.Errorf("accesscheck: ucq containment needs both Q1 and Q2")
			}
		case ContainDatalog:
			if ct.Program == nil {
				return fmt.Errorf("accesscheck: datalog containment needs a Program")
			}
			if ct.Q2 == nil {
				return fmt.Errorf("accesscheck: datalog containment needs Q2")
			}
		case ContainAccess:
			if ct.Schema == nil {
				return fmt.Errorf("accesscheck: access containment needs a Schema")
			}
			if ct.Q1 == nil || ct.Q2 == nil {
				return fmt.Errorf("accesscheck: access containment needs both Q1 and Q2")
			}
		default:
			return fmt.Errorf("accesscheck: unknown containment mode %v", ct.Mode)
		}
	case TaskRelevance:
		rt := t.Relevance
		if rt == nil {
			return fmt.Errorf("accesscheck: %s task without Relevance payload", t.Kind)
		}
		if rt.Schema == nil {
			return fmt.Errorf("accesscheck: relevance task: nil schema")
		}
		if rt.Query == nil {
			return fmt.Errorf("accesscheck: relevance task: nil query")
		}
		if rt.MaxDepth < 0 {
			return fmt.Errorf("accesscheck: relevance task: negative max depth %d", rt.MaxDepth)
		}
		if rt.Probe == "" && rt.Hidden == nil {
			return fmt.Errorf("accesscheck: relevance task needs a Probe (long-term relevance) or a Hidden instance (accessible part)")
		}
		if rt.Probe != "" {
			if _, ok := rt.Schema.Method(rt.Probe); !ok {
				return fmt.Errorf("accesscheck: relevance task: schema has no method %q", rt.Probe)
			}
		}
	case TaskChase:
		ch := t.Chase
		if ch == nil {
			return fmt.Errorf("accesscheck: %s task without Chase payload", t.Kind)
		}
		if len(ch.Arities) == 0 {
			return fmt.Errorf("accesscheck: chase task: no relation arities")
		}
		if ch.Sigma.Rel == "" {
			return fmt.Errorf("accesscheck: chase task: sigma names no relation")
		}
		if ch.StepBudget < 0 {
			return fmt.Errorf("accesscheck: chase task: negative step budget %d", ch.StepBudget)
		}
	default:
		return fmt.Errorf("accesscheck: unknown task kind %v", t.Kind)
	}
	return nil
}

// ContainmentReport is the typed TaskContainment result.
type ContainmentReport struct {
	Mode      ContainmentMode
	Contained bool
	// Exact reports an unconditional verdict. UCQ verdicts are always
	// exact; datalog/access refutations are exact, confirmations only when
	// nothing was cut by a bound.
	Exact bool
	// DepthBound is the bound actually used (datalog: unfolding depth;
	// access: path depth).
	DepthBound int
	// ExpansionsChecked counts examined proof-tree expansions (datalog).
	ExpansionsChecked int
	// PathsExplored counts visited path prefixes (access).
	PathsExplored int
	// Counterexample renders the violating canonical database (datalog),
	// empty when contained.
	Counterexample string
	// Witness is the counterexample access path (access mode).
	Witness *Path
	// Formula renders the compiled Example 2.2 AccLTL formula (access).
	Formula string
}

// RelevanceReport is the typed TaskRelevance result.
type RelevanceReport struct {
	// Relevant answers long-term-relevance mode.
	Relevant bool
	// Answer is the maximal answer of Query on the accessible part
	// (accessible-part mode).
	Answer bool
	// Accessible is the computed accessible part (accessible-part mode).
	Accessible *Instance
	// PathsExplored/Depth describe the relevance search (probe mode).
	PathsExplored int
	Depth         int
	// Witness is a path demonstrating relevance (probe mode).
	Witness *Path
	// Formula renders the compiled Example 2.3 formula (probe mode).
	Formula string
}

// ChaseReport is the typed TaskChase result.
type ChaseReport struct {
	// Verdict is the chase outcome as deps spells it: "implied",
	// "not implied", or "unknown (budget exhausted)".
	Verdict string
	// Implied is the headline boolean; Terminated distinguishes a real
	// "not implied" (chase fixpoint reached) from budget exhaustion.
	Implied    bool
	Terminated bool
	// Steps/Tuples/Budget describe the chase run.
	Steps  int
	Tuples int
	Budget int
}

// TaskResult is the shared result envelope every task kind answers with:
// a headline verdict, an exactness bit with cache-admission semantics, the
// engine that ran, wall time, and the kind-specific typed report.
type TaskResult struct {
	Kind TaskKind
	// Verdict is the headline boolean: Satisfiable (check), Contained
	// (containment), Relevant or the maximal answer (relevance), Implied
	// (chase).
	Verdict bool
	// Truncated marks a bound-relative verdict — path/response caps
	// (check, access containment, relevance), a cut unfolding (datalog
	// containment), an exhausted step budget (chase). Truncated results
	// are served but never cached; accesscheck/cache enforces it.
	Truncated bool
	// ShardsCompleted / ShardsTotal carry a sharded check's coverage
	// (see Result); zero for whole-space runs and non-check kinds.
	ShardsCompleted int
	ShardsTotal     int
	// Engine names the decision procedure that ran.
	Engine string
	// Elapsed is the wall time of the solve.
	Elapsed time.Duration

	// Exactly one of the following is set, matching Kind.
	Check       *Result
	Containment *ContainmentReport
	Relevance   *RelevanceReport
	Chase       *ChaseReport
}

// Do runs one task. TaskCheck goes through the unchanged Check pipeline
// under the checker's configuration; the other kinds are decided from their
// payload alone (see the package comment). ctx is honoured throughout every
// kind's search loops.
func (c *Checker) Do(ctx context.Context, t *Task) (*TaskResult, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("accesscheck: Do: %w", err)
	}
	switch t.Kind {
	case TaskCheck:
		res, err := c.Check(ctx, t.Check.Schema, t.Check.Formula)
		if err != nil {
			return nil, err
		}
		return &TaskResult{
			Kind:            TaskCheck,
			Verdict:         res.Satisfiable,
			Truncated:       res.Truncated,
			ShardsCompleted: res.ShardsCompleted,
			ShardsTotal:     res.ShardsTotal,
			Engine:          res.Engine.String(),
			Elapsed:         res.Elapsed,
			Check:           res,
		}, nil
	case TaskContainment:
		return doContainment(ctx, t.Containment)
	case TaskRelevance:
		return doRelevance(ctx, t.Relevance)
	case TaskChase:
		return doChase(ctx, t.Chase)
	default:
		return nil, fmt.Errorf("accesscheck: Do: unknown task kind %v", t.Kind)
	}
}

// Do is the one-shot form: build a throwaway Checker from opts and run the
// task through it.
func Do(ctx context.Context, t *Task, opts ...Option) (*TaskResult, error) {
	c, err := NewChecker(opts...)
	if err != nil {
		return nil, err
	}
	return c.Do(ctx, t)
}

func doContainment(ctx context.Context, ct *ContainmentTask) (*TaskResult, error) {
	start := time.Now()
	out := &TaskResult{Kind: TaskContainment}
	rep := &ContainmentReport{Mode: ct.Mode}
	out.Containment = rep
	switch ct.Mode {
	case ContainUCQ:
		out.Engine = "ucq-homomorphism"
		contained, err := fo.Contains(ct.Q1, ct.Q2)
		if err != nil {
			return nil, err
		}
		rep.Contained = contained
		rep.Exact = true
	case ContainDatalog:
		out.Engine = "datalog-expansion"
		res, err := ct.Program.ContainedInCtx(ctx, ct.Q2, ct.Depth)
		if err != nil {
			return nil, err
		}
		rep.Contained = res.Contained
		rep.Exact = res.Exact
		rep.DepthBound = res.DepthBound
		rep.ExpansionsChecked = res.ExpansionsChecked
		if res.Counterexample != nil {
			rep.Counterexample = renderStructure(res.Counterexample)
		}
	case ContainAccess:
		out.Engine = "accltl-bounded"
		res, err := relevance.ContainedUnderAccessPatternsCtx(ctx, ct.Schema, ct.Q1, ct.Q2, ct.Seed, ct.Depth)
		if err != nil {
			return nil, err
		}
		rep.Contained = res.Contained
		rep.Formula = res.Formula.String()
		if sr := res.Counterexample; sr != nil {
			rep.DepthBound = sr.Depth
			rep.PathsExplored = sr.PathsExplored
			rep.Witness = sr.Witness
			// A counterexample path refutes unconditionally; a confirmed
			// containment is exact only if the bounded search exhausted its
			// space without hitting a cap (and is still depth-relative —
			// Truncated stays the caller's signal for cap-cut searches, the
			// depth bound is in the report).
			rep.Exact = !res.Contained || !(sr.Truncated || sr.ResponsesCapped)
		}
	default:
		return nil, fmt.Errorf("accesscheck: unknown containment mode %v", ct.Mode)
	}
	out.Verdict = rep.Contained
	out.Truncated = !rep.Exact
	out.Elapsed = time.Since(start)
	return out, nil
}

func doRelevance(ctx context.Context, rt *RelevanceTask) (*TaskResult, error) {
	start := time.Now()
	out := &TaskResult{Kind: TaskRelevance}
	rep := &RelevanceReport{}
	out.Relevance = rep
	if rt.Probe != "" {
		out.Engine = "accltl-plus"
		m, _ := rt.Schema.Method(rt.Probe) // Validate checked existence
		res, err := relevance.LongTermRelevant(rt.Schema, m, rt.Binding, rt.Query, relevance.LTROptions{
			Context:  ctx,
			Grounded: rt.Grounded,
			Universe: rt.Universe,
			MaxDepth: rt.MaxDepth,
		})
		if err != nil {
			return nil, err
		}
		rep.Relevant = res.Relevant
		rep.Formula = res.Formula.String()
		if sr := res.Witness; sr != nil {
			rep.PathsExplored = sr.PathsExplored
			rep.Depth = sr.Depth
			rep.Witness = sr.Witness
			out.Truncated = sr.Truncated || sr.ResponsesCapped
		}
		out.Verdict = rep.Relevant
	} else {
		out.Engine = "datalog-fixpoint"
		acc, err := relevance.AccessiblePart(rt.Schema, rt.Hidden, rt.Seed)
		if err != nil {
			return nil, err
		}
		ans, err := relevance.QueryHolds(rt.Query, acc)
		if err != nil {
			return nil, err
		}
		rep.Accessible = acc
		rep.Answer = ans
		// The accessible-part fixpoint is exact: no bound cuts it.
		out.Verdict = ans
	}
	out.Elapsed = time.Since(start)
	return out, nil
}

func doChase(ctx context.Context, ch *ChaseTask) (*TaskResult, error) {
	start := time.Now()
	gamma := deps.Set{FDs: ch.FDs, IDs: ch.IDs}
	verdict, stats, err := deps.Chase(ctx, gamma, ch.Sigma, ch.Arities, ch.StepBudget)
	if err != nil {
		return nil, err
	}
	return &TaskResult{
		Kind:      TaskChase,
		Verdict:   verdict == deps.Implied,
		Truncated: verdict == deps.Unknown,
		Engine:    "chase",
		Elapsed:   time.Since(start),
		Chase: &ChaseReport{
			Verdict:    verdict.String(),
			Implied:    verdict == deps.Implied,
			Terminated: verdict != deps.Unknown,
			Steps:      stats.Steps,
			Tuples:     stats.Tuples,
			Budget:     stats.Budget,
		},
	}, nil
}

// renderStructure prints a counterexample database deterministically:
// predicates sorted by name, tuples in insertion order.
func renderStructure(st *fo.MapStructure) string {
	preds := st.Preds()
	sort.Slice(preds, func(i, j int) bool { return preds[i].Name < preds[j].Name })
	var b strings.Builder
	for _, p := range preds {
		for _, t := range st.TuplesOf(p) {
			if b.Len() > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%s%s", p.Name, t.String())
		}
	}
	return b.String()
}
