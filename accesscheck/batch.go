package accesscheck

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Request is one unit of batch work: a formula to decide over a schema's
// access paths. The checker's configuration (engine, restrictions, bounds)
// applies uniformly to every request in a batch.
type Request struct {
	Schema  *Schema
	Formula Formula
}

// BatchItem is the per-request outcome of CheckBatch: exactly one of Result
// and Err is meaningful. Items line up index-for-index with the request
// slice, so callers can correlate without extra bookkeeping.
type BatchItem struct {
	Result *Result
	Err    error
}

// TaskBatchItem is the per-task outcome of DoBatch: exactly one of Result
// and Err is meaningful, index-aligned with the task slice.
type TaskBatchItem struct {
	Result *TaskResult
	Err    error
}

// DoBatch is the task-generic batch runner: it runs Do over every task
// concurrently (bounded by GOMAXPROCS workers) and returns one item per
// task, in task order. Kinds may mix freely within one batch; the context
// applies to the whole batch — cancellation or deadline expiry aborts
// in-flight tasks with the context's error and fails not-yet-started ones
// without running them. A Checker is immutable after construction, so one
// checker may serve any number of concurrent DoBatch (and Do/Check) calls.
func (c *Checker) DoBatch(ctx context.Context, tasks []*Task) []TaskBatchItem {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]TaskBatchItem, len(tasks))
	if len(tasks) == 0 {
		return out
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(tasks) {
		workers = len(tasks)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					out[i] = TaskBatchItem{Err: fmt.Errorf("accesscheck: DoBatch: %w", err)}
					continue
				}
				res, err := c.Do(ctx, tasks[i])
				out[i] = TaskBatchItem{Result: res, Err: err}
			}
		}()
	}
	for i := range tasks {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// DoBatch is the one-shot form: build a throwaway Checker from opts and run
// the batch through it. An option error fails every item.
func DoBatch(ctx context.Context, tasks []*Task, opts ...Option) []TaskBatchItem {
	c, err := NewChecker(opts...)
	if err != nil {
		out := make([]TaskBatchItem, len(tasks))
		for i := range out {
			out[i] = TaskBatchItem{Err: err}
		}
		return out
	}
	return c.DoBatch(ctx, tasks)
}

// CheckBatch runs Check over every request concurrently, preserving the
// original check-only API on top of the task-generic runner: each request
// wraps into a check task, and the unwrapped results line up
// index-for-index with the request slice.
func (c *Checker) CheckBatch(ctx context.Context, reqs []Request) []BatchItem {
	tasks := make([]*Task, len(reqs))
	for i, r := range reqs {
		tasks[i] = NewCheckTask(r.Schema, r.Formula)
	}
	items := c.DoBatch(ctx, tasks)
	out := make([]BatchItem, len(items))
	for i, it := range items {
		out[i].Err = it.Err
		if it.Result != nil {
			out[i].Result = it.Result.Check
		}
	}
	return out
}

// CheckBatch is the one-shot form: build a throwaway Checker from opts and
// run the batch through it. An option error fails every item.
func CheckBatch(ctx context.Context, reqs []Request, opts ...Option) []BatchItem {
	c, err := NewChecker(opts...)
	if err != nil {
		out := make([]BatchItem, len(reqs))
		for i := range out {
			out[i] = BatchItem{Err: err}
		}
		return out
	}
	return c.CheckBatch(ctx, reqs)
}
