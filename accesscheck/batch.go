package accesscheck

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Request is one unit of batch work: a formula to decide over a schema's
// access paths. The checker's configuration (engine, restrictions, bounds)
// applies uniformly to every request in a batch.
type Request struct {
	Schema  *Schema
	Formula Formula
}

// BatchItem is the per-request outcome of CheckBatch: exactly one of Result
// and Err is meaningful. Items line up index-for-index with the request
// slice, so callers can correlate without extra bookkeeping.
type BatchItem struct {
	Result *Result
	Err    error
}

// CheckBatch runs Check over every request concurrently (bounded by
// GOMAXPROCS workers) and returns one item per request, in request order.
// The context applies to the whole batch: cancellation or deadline expiry
// aborts in-flight checks with the context's error and fails not-yet-started
// ones without running them. A Checker is immutable after construction, so
// one checker may serve any number of concurrent CheckBatch (and Check)
// calls.
func (c *Checker) CheckBatch(ctx context.Context, reqs []Request) []BatchItem {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]BatchItem, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(reqs) {
		workers = len(reqs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					out[i] = BatchItem{Err: fmt.Errorf("accesscheck: CheckBatch: %w", err)}
					continue
				}
				res, err := c.Check(ctx, reqs[i].Schema, reqs[i].Formula)
				out[i] = BatchItem{Result: res, Err: err}
			}
		}()
	}
	for i := range reqs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// CheckBatch is the one-shot form: build a throwaway Checker from opts and
// run the batch through it. An option error fails every item.
func CheckBatch(ctx context.Context, reqs []Request, opts ...Option) []BatchItem {
	c, err := NewChecker(opts...)
	if err != nil {
		out := make([]BatchItem, len(reqs))
		for i := range out {
			out[i] = BatchItem{Err: err}
		}
		return out
	}
	return c.CheckBatch(ctx, reqs)
}
