package accesscheck_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"accltl/accesscheck"
	"accltl/internal/accltl"
	"accltl/internal/instance"
	"accltl/internal/workload"
)

func TestOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opt  accesscheck.Option
	}{
		{"negative depth", accesscheck.WithMaxDepth(-1)},
		{"negative path cap", accesscheck.WithMaxPaths(-1)},
		{"negative response cap", accesscheck.WithMaxResponseChoices(-1)},
		{"no exact methods", accesscheck.WithExactMethods()},
		{"empty exact method name", accesscheck.WithExactMethods("AcM1", "")},
		{"nil initial instance", accesscheck.WithInitialInstance(nil)},
		{"nil universe", accesscheck.WithUniverse(nil)},
		{"unknown engine", accesscheck.WithEngine(accesscheck.Engine(42))},
		{"bad exact spec", accesscheck.WithExactSpec("AcM1,,AcM2")},
		{"nil option", nil},
	}
	for _, tc := range cases {
		if _, err := accesscheck.NewChecker(tc.opt); err == nil {
			t.Errorf("%s: NewChecker accepted an invalid option", tc.name)
		}
	}
	// And the valid combinations still construct.
	if _, err := accesscheck.NewChecker(
		accesscheck.WithGrounded(),
		accesscheck.WithIdempotentOnly(),
		accesscheck.WithExactMethods("AcM1"),
		accesscheck.WithExactSpec("*"),
		accesscheck.WithMaxDepth(3),
		accesscheck.WithMaxPaths(1000),
		accesscheck.WithEngine(accesscheck.EngineBounded),
	); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
}

func TestCheckNilArguments(t *testing.T) {
	phone := workload.MustPhone()
	ctx := context.Background()
	if _, err := accesscheck.Check(ctx, nil, phone.IntroFormula()); err == nil {
		t.Error("Check accepted a nil schema")
	}
	if _, err := accesscheck.Check(ctx, phone.Schema, nil); err == nil {
		t.Error("Check accepted a nil formula")
	}
}

// TestFragmentDispatchParity pins the facade to the direct internal solvers
// on the paper's worked examples: same engine choice, same verdict.
func TestFragmentDispatchParity(t *testing.T) {
	phone := workload.MustPhone()
	ctx := context.Background()

	cases := []struct {
		name       string
		formula    accesscheck.Formula
		wantEngine accesscheck.Engine
		direct     func(f accltl.Formula) (accltl.SolveResult, error)
	}{
		{
			"intro formula → plus solver",
			phone.IntroFormula(),
			accesscheck.EnginePlus,
			func(f accltl.Formula) (accltl.SolveResult, error) {
				return accltl.SolvePlusDirect(f, accltl.SolveOptions{Schema: phone.Schema})
			},
		},
		{
			"X formula → X solver",
			accesscheck.Next(accesscheck.Atom(phone.MobileNonEmptyPost())),
			accesscheck.EngineX,
			func(f accltl.Formula) (accltl.SolveResult, error) {
				return accltl.SolveX(f, accltl.SolveOptions{Schema: phone.Schema})
			},
		},
		{
			"0-Acc formula → 0-Acc solver",
			accesscheck.MustParseFormula(`F [bind AcM1]`),
			accesscheck.EngineZeroAcc,
			func(f accltl.Formula) (accltl.SolveResult, error) {
				return accltl.SolveZeroAcc(f, accltl.SolveOptions{Schema: phone.Schema})
			},
		},
	}
	for _, tc := range cases {
		res, err := accesscheck.Check(ctx, phone.Schema, tc.formula)
		if err != nil {
			t.Fatalf("%s: facade: %v", tc.name, err)
		}
		if res.Engine != tc.wantEngine {
			t.Errorf("%s: dispatched %v, want %v", tc.name, res.Engine, tc.wantEngine)
		}
		direct, err := tc.direct(tc.formula)
		if err != nil {
			t.Fatalf("%s: direct: %v", tc.name, err)
		}
		if res.Satisfiable != direct.Satisfiable {
			t.Errorf("%s: facade=%v direct=%v", tc.name, res.Satisfiable, direct.Satisfiable)
		}
		if res.Depth != direct.Depth {
			t.Errorf("%s: facade depth=%d direct depth=%d", tc.name, res.Depth, direct.Depth)
		}
	}
}

// TestCombinatorsMatchParser: the programmatic combinators and the textual
// front-end build the same formulas.
func TestCombinatorsMatchParser(t *testing.T) {
	phone := workload.MustPhone()
	post := accesscheck.Atom(phone.MobileNonEmptyPost())
	cases := []struct {
		src  string
		want accesscheck.Formula
	}{
		{`F [exists n,p,s,ph. post Mobile#(n,p,s,ph)]`, accesscheck.Eventually(post)},
		{`G ![exists n,p,s,ph. post Mobile#(n,p,s,ph)]`, accesscheck.Always(accesscheck.Not(post))},
		{`X [exists n,p,s,ph. post Mobile#(n,p,s,ph)]`, accesscheck.Next(post)},
		{`true U [exists n,p,s,ph. post Mobile#(n,p,s,ph)]`, accesscheck.Until(accesscheck.And(), post)},
	}
	for _, tc := range cases {
		got, err := accesscheck.ParseFormula(tc.src)
		if err != nil {
			t.Fatalf("%q: %v", tc.src, err)
		}
		if got.String() != tc.want.String() {
			t.Errorf("%q: parsed %s, combinators built %s", tc.src, got, tc.want)
		}
	}
}

// TestCheckCancelledContext: an already-cancelled context must surface its
// error before the search loop is entered.
func TestCheckCancelledContext(t *testing.T) {
	phone := workload.MustPhone()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := accesscheck.Check(ctx, phone.Schema, phone.IntroFormula())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled Check returned a result: %+v", res)
	}
}

// TestCheckExpiredDeadline: a deadline already in the past behaves like
// cancellation.
func TestCheckExpiredDeadline(t *testing.T) {
	phone := workload.MustPhone()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := accesscheck.Check(ctx, phone.Schema, phone.IntroFormula()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestCheckDeadlineStopsSearchPromptly: a search whose full exploration
// would take far longer than the budget must return with the context's
// error shortly after the deadline, proving the hot loops poll the context.
func TestCheckDeadlineStopsSearchPromptly(t *testing.T) {
	phone := workload.MustPhone()
	// Unsatisfiable conjunction: the search must exhaust the space, and an
	// 8-resident universe at depth 6 is astronomically larger than the
	// budget allows.
	post := accesscheck.Atom(phone.MobileNonEmptyPost())
	unsat := accesscheck.And(accesscheck.Eventually(post), accesscheck.Always(accesscheck.Not(post)))

	const budget = 100 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	start := time.Now()
	_, err := accesscheck.Check(ctx, phone.Schema, unsat,
		accesscheck.WithEngine(accesscheck.EngineBounded),
		accesscheck.WithUniverse(phone.Universe(8)),
		accesscheck.WithMaxDepth(6))
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v after %s, want context.DeadlineExceeded", err, elapsed)
	}
	// Generous CI margin: the poll interval is every 64 visited prefixes,
	// so the overshoot should be microseconds, not seconds.
	if elapsed > 10*time.Second {
		t.Fatalf("Check took %s to honour a %s deadline", elapsed, budget)
	}
}

// TestTruncatedReportedOnPathCap: a search cut off by WithMaxPaths must
// flag its unsatisfiable verdict as cap-relative instead of presenting it
// as definitive.
func TestTruncatedReportedOnPathCap(t *testing.T) {
	phone := workload.MustPhone()
	f := accesscheck.MustParseFormula(`F [exists n,p,s,ph. post Mobile#(n,p,s,ph)]`)
	ctx := context.Background()
	full, err := accesscheck.Check(ctx, phone.Schema, f)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Satisfiable || full.Truncated {
		t.Fatalf("uncapped check: satisfiable=%v truncated=%v", full.Satisfiable, full.Truncated)
	}
	capped, err := accesscheck.Check(ctx, phone.Schema, f, accesscheck.WithMaxPaths(2))
	if err != nil {
		t.Fatal(err)
	}
	if capped.Satisfiable {
		t.Fatalf("cap of 2 should not find the witness (%d prefixes needed)", full.PathsExplored)
	}
	if !capped.Truncated {
		t.Error("capped unsatisfiable verdict not flagged as Truncated")
	}
}

// TestPathTreeCancelledContext: the exploration facade honours the context
// too.
func TestPathTreeCancelledContext(t *testing.T) {
	phone := workload.MustPhone()
	chk, err := accesscheck.NewChecker()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := chk.PathTree(ctx, phone.Schema, phone.SmithJonesUniverse(), 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("PathTree err = %v, want context.Canceled", err)
	}
	if _, err := chk.PathStats(ctx, phone.Schema, phone.SmithJonesUniverse(), 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("PathStats err = %v, want context.Canceled", err)
	}
}

// TestHoldsAgreesWithSolverWitness: any witness Check returns must satisfy
// the formula under the facade's direct-semantics evaluation.
func TestHoldsAgreesWithSolverWitness(t *testing.T) {
	phone := workload.MustPhone()
	for _, f := range []accesscheck.Formula{
		phone.IntroFormula(),
		accesscheck.MustParseFormula(`F [bind AcM1]`),
	} {
		res, err := accesscheck.Check(context.Background(), phone.Schema, f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if !res.Satisfiable {
			t.Fatalf("%s: expected satisfiable", f)
		}
		ok, err := accesscheck.Holds(f, res.Witness)
		if err != nil {
			t.Fatalf("%s: Holds: %v", f, err)
		}
		if !ok {
			t.Errorf("%s: witness rejected by direct semantics", f)
		}
	}
}

// TestEngineStrings keeps the engine names stable (they appear in CLI
// output and logs).
func TestEngineStrings(t *testing.T) {
	want := map[accesscheck.Engine]string{
		accesscheck.EngineAuto:      "auto",
		accesscheck.EngineX:         "x",
		accesscheck.EngineZeroAcc:   "0-acc",
		accesscheck.EnginePlus:      "plus",
		accesscheck.EngineBounded:   "bounded",
		accesscheck.EngineAutomaton: "automaton",
	}
	for e, s := range want {
		if e.String() != s {
			t.Errorf("Engine(%d).String() = %q, want %q", int(e), e.String(), s)
		}
	}
}

// TestTruncatedReportedOnResponseCap: an unsat verdict reached while the
// subset-response fan-out was being cut to MaxResponseChoices is not exact
// and must say so — this is the silent-incompleteness regression test.
func TestTruncatedReportedOnResponseCap(t *testing.T) {
	sch, err := accesscheck.ParseSchema([]string{"R:int"}, []string{"Scan:R"})
	if err != nil {
		t.Fatal(err)
	}
	u := instance.NewInstance(sch)
	for i := int64(1); i <= 5; i++ {
		u.MustAdd("R", instance.Int(i))
	}
	// Propositionally unsatisfiable: the verdict is "no witness", reached
	// while the free scan's 5 matching tuples were cut to the default cap
	// of 3 per response.
	f := accesscheck.MustParseFormula(`[exists x. post R(x)] & ![exists x. post R(x)]`)
	ctx := context.Background()
	res, err := accesscheck.Check(ctx, sch, f,
		accesscheck.WithEngine(accesscheck.EngineBounded),
		accesscheck.WithUniverse(u))
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfiable {
		t.Fatal("contradiction reported satisfiable")
	}
	if !res.ResponsesCapped {
		t.Error("5 matching tuples cut to 3 choices, but ResponsesCapped is false")
	}
	if !res.Truncated {
		t.Error("response-capped unsat verdict not flagged Truncated")
	}
	// Raising the cap above the fan-out restores exactness.
	res, err = accesscheck.Check(ctx, sch, f,
		accesscheck.WithEngine(accesscheck.EngineBounded),
		accesscheck.WithUniverse(u),
		accesscheck.WithMaxResponseChoices(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfiable {
		t.Fatal("contradiction reported satisfiable under the raised cap")
	}
	if res.ResponsesCapped || res.Truncated {
		t.Errorf("uncapped search flagged as capped: truncated=%v responsesCapped=%v",
			res.Truncated, res.ResponsesCapped)
	}
}

// TestCheckBatchMixedVerdicts: per-item results line up with requests, and
// broken items fail without failing the batch.
func TestCheckBatchMixedVerdicts(t *testing.T) {
	phone := workload.MustPhone()
	sat := accesscheck.MustParseFormula(`F [bind AcM1]`)
	unsatPost := accesscheck.Atom(phone.MobileNonEmptyPost())
	unsat := accesscheck.And(accesscheck.Eventually(unsatPost), accesscheck.Always(accesscheck.Not(unsatPost)))
	items := accesscheck.CheckBatch(context.Background(), []accesscheck.Request{
		{Schema: phone.Schema, Formula: sat},
		{Schema: phone.Schema, Formula: unsat},
		{Schema: nil, Formula: sat}, // broken: nil schema
		{Schema: phone.Schema, Formula: sat},
	}, accesscheck.WithEngine(accesscheck.EngineBounded))
	if len(items) != 4 {
		t.Fatalf("got %d items, want 4", len(items))
	}
	if it := items[0]; it.Err != nil || !it.Result.Satisfiable {
		t.Errorf("item 0: %+v, want satisfiable", it)
	}
	if it := items[1]; it.Err != nil || it.Result.Satisfiable {
		t.Errorf("item 1: %+v, want unsatisfiable", it)
	}
	if it := items[2]; it.Err == nil {
		t.Error("item 2: nil schema did not fail")
	}
	if it := items[3]; it.Err != nil || !it.Result.Satisfiable {
		t.Errorf("item 3: %+v, want satisfiable", it)
	}
}

// TestCheckBatchSharedCheckerConcurrently: one immutable Checker must serve
// overlapping CheckBatch calls; run under -race this is the facade-level
// concurrency regression test.
func TestCheckBatchSharedCheckerConcurrently(t *testing.T) {
	phone := workload.MustPhone()
	chk, err := accesscheck.NewChecker()
	if err != nil {
		t.Fatal(err)
	}
	reqs := []accesscheck.Request{
		{Schema: phone.Schema, Formula: accesscheck.MustParseFormula(`F [bind AcM1]`)},
		{Schema: phone.Schema, Formula: phone.IntroFormula()},
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, it := range chk.CheckBatch(context.Background(), reqs) {
				if it.Err != nil {
					t.Errorf("concurrent batch: %v", it.Err)
				} else if !it.Result.Satisfiable {
					t.Error("concurrent batch: lost a verdict")
				}
			}
		}()
	}
	wg.Wait()
}

// TestCheckBatchCancelled: a dead context fails every item with its error
// instead of solving.
func TestCheckBatchCancelled(t *testing.T) {
	phone := workload.MustPhone()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	items := accesscheck.CheckBatch(ctx, []accesscheck.Request{
		{Schema: phone.Schema, Formula: phone.IntroFormula()},
		{Schema: phone.Schema, Formula: phone.IntroFormula()},
	})
	for i, it := range items {
		if !errors.Is(it.Err, context.Canceled) {
			t.Errorf("item %d: err = %v, want context.Canceled", i, it.Err)
		}
	}
}

// TestFingerprint: equal configurations agree, and every ingredient that
// changes what Check computes changes the key.
func TestFingerprint(t *testing.T) {
	phone := workload.MustPhone()
	f := phone.IntroFormula()
	base, err := accesscheck.NewChecker()
	if err != nil {
		t.Fatal(err)
	}
	same, err := accesscheck.NewChecker()
	if err != nil {
		t.Fatal(err)
	}
	fp := base.Fingerprint(phone.Schema, f)
	if fp == "" {
		t.Fatal("empty fingerprint")
	}
	if got := same.Fingerprint(phone.Schema, f); got != fp {
		t.Errorf("identical configurations disagree: %s vs %s", fp, got)
	}
	variants := map[string]accesscheck.Option{
		"grounded":    accesscheck.WithGrounded(),
		"idempotent":  accesscheck.WithIdempotentOnly(),
		"allExact":    accesscheck.WithAllExact(),
		"exactMethod": accesscheck.WithExactMethods("AcM1"),
		"maxDepth":    accesscheck.WithMaxDepth(7),
		"maxPaths":    accesscheck.WithMaxPaths(99),
		"respChoices": accesscheck.WithMaxResponseChoices(2),
		"engine":      accesscheck.WithEngine(accesscheck.EngineBounded),
		"universe":    accesscheck.WithUniverse(phone.SmithJonesUniverse()),
		"initial":     accesscheck.WithInitialInstance(phone.SmithJonesUniverse()),
	}
	seen := map[string]string{fp: "base"}
	for name, opt := range variants {
		chk, err := accesscheck.NewChecker(opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := chk.Fingerprint(phone.Schema, f)
		if prev, dup := seen[got]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[got] = name
	}
	if got := base.Fingerprint(phone.Schema, accesscheck.MustParseFormula(`F [bind AcM1]`)); got == fp {
		t.Error("different formulas share a fingerprint")
	}
}
