package accesscheck

import (
	"context"
	"fmt"

	"accltl/internal/lts"
)

// PathTree is the tree of possible access paths (Figure 1): nodes are
// "Known Facts" configurations, edges are accesses with one well-formed
// response each. Every configuration and response in the tree is owned by
// the tree — the zero-clone exploration core underneath (see internal/lts)
// only lends its state to visitors, and the tree builder clones what it
// keeps.
type PathTree = lts.TreeNode

// PathStats summarizes an exploration: paths and distinct configurations
// reached per depth.
type PathStats = lts.Stats

// ltsOptions translates the checker's configuration into exploration
// options against an explicit hidden universe.
func (c *Checker) ltsOptions(ctx context.Context, universe *Instance, depth int) lts.Options {
	return lts.Options{
		Context:            ctx,
		Universe:           universe,
		Initial:            c.initial,
		MaxDepth:           depth,
		GroundedOnly:       c.grounded,
		IdempotentOnly:     c.idempotentOnly,
		ExactMethods:       c.exactMethods,
		AllExact:           c.allExact,
		MaxResponseChoices: c.maxResponseChoices,
		MaxPaths:           c.maxPaths,
		Parallelism:        c.parallelism,
	}
}

// PathTree materializes the tree of possible paths of the schema against a
// hidden universe, up to the given depth. The checker's restrictions
// (grounded, exact, idempotent, initial instance) apply, and ctx bounds the
// exploration.
func (c *Checker) PathTree(ctx context.Context, sch *Schema, universe *Instance, depth int) (*PathTree, error) {
	if sch == nil {
		return nil, fmt.Errorf("accesscheck: PathTree: nil schema")
	}
	if universe == nil {
		return nil, fmt.Errorf("accesscheck: PathTree: nil universe")
	}
	if depth < 0 {
		return nil, fmt.Errorf("accesscheck: PathTree: negative depth %d", depth)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return lts.BuildTree(sch, c.ltsOptions(ctx, universe, depth))
}

// PathStats explores the schema's paths against a hidden universe and
// returns per-depth path and configuration counts.
func (c *Checker) PathStats(ctx context.Context, sch *Schema, universe *Instance, depth int) (PathStats, error) {
	if sch == nil {
		return PathStats{}, fmt.Errorf("accesscheck: PathStats: nil schema")
	}
	if universe == nil {
		return PathStats{}, fmt.Errorf("accesscheck: PathStats: nil universe")
	}
	if depth < 0 {
		return PathStats{}, fmt.Errorf("accesscheck: PathStats: negative depth %d", depth)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return lts.Collect(sch, c.ltsOptions(ctx, universe, depth))
}
