package accesscheck

// Textual front-ends for task inputs — the syntax the CLI flags and the
// server wire format share:
//
//	datalog rule   "Path(x,y) :- Edge(x,y)"  /  "Goal() :- Path(x,y)"
//	FD             "R:0,1->2"        (positions of R: {0,1} determine 2)
//	ID             "R[0,1]<=S[2,3]"  (R's columns 0,1 included in S's 2,3)
//	fact           "Address('Smith',7,true)"   (typed by the relation)
//	arity          "R:3"
//
// Terms in rules are bare identifiers for variables and literals for
// constants: single- or double-quoted strings, integers, true/false.

import (
	"fmt"
	"strconv"
	"strings"

	"accltl/internal/fo"
	"accltl/internal/instance"
	"accltl/internal/schema"
)

// ParseProgram reads a datalog program from one rule per string plus the
// goal predicate name. A rule is "Head(args) :- Atom(args), Atom(args)" or a
// bodyless fact "Head(args)"; an optional trailing period is ignored.
func ParseProgram(rules []string, goal string) (*DatalogProgram, error) {
	goal = strings.TrimSpace(goal)
	if goal == "" {
		return nil, fmt.Errorf("accesscheck: ParseProgram: empty goal predicate")
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("accesscheck: ParseProgram: no rules")
	}
	p := &DatalogProgram{Goal: fo.PlainPred(goal)}
	for _, src := range rules {
		r, err := parseRule(src)
		if err != nil {
			return nil, err
		}
		p.Rules = append(p.Rules, r)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func parseRule(src string) (DatalogRule, error) {
	s := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(src), "."))
	if s == "" {
		return DatalogRule{}, fmt.Errorf("accesscheck: empty datalog rule")
	}
	headSrc, bodySrc, hasBody := strings.Cut(s, ":-")
	head, err := parseRuleAtom(headSrc)
	if err != nil {
		return DatalogRule{}, fmt.Errorf("accesscheck: rule %q: %v", src, err)
	}
	rule := DatalogRule{Head: head}
	if hasBody {
		atoms, err := splitTopLevel(bodySrc)
		if err != nil {
			return DatalogRule{}, fmt.Errorf("accesscheck: rule %q: %v", src, err)
		}
		for _, a := range atoms {
			atom, err := parseRuleAtom(a)
			if err != nil {
				return DatalogRule{}, fmt.Errorf("accesscheck: rule %q: %v", src, err)
			}
			rule.Body = append(rule.Body, atom)
		}
	}
	return rule, nil
}

func parseRuleAtom(src string) (fo.Atom, error) {
	s := strings.TrimSpace(src)
	name, rest, hasArgs := strings.Cut(s, "(")
	name = strings.TrimSpace(name)
	if name == "" {
		return fo.Atom{}, fmt.Errorf("atom %q has no predicate name", src)
	}
	atom := fo.Atom{Pred: fo.PlainPred(name)}
	if !hasArgs {
		return atom, nil
	}
	rest = strings.TrimSpace(rest)
	if !strings.HasSuffix(rest, ")") {
		return fo.Atom{}, fmt.Errorf("atom %q: unbalanced parentheses", src)
	}
	inner := strings.TrimSpace(strings.TrimSuffix(rest, ")"))
	if inner == "" {
		return atom, nil
	}
	args, err := splitArgs(inner)
	if err != nil {
		return fo.Atom{}, fmt.Errorf("atom %q: %v", src, err)
	}
	for _, a := range args {
		t, err := parseTerm(a)
		if err != nil {
			return fo.Atom{}, fmt.Errorf("atom %q: %v", src, err)
		}
		atom.Args = append(atom.Args, t)
	}
	return atom, nil
}

// parseTerm reads one rule term: a quoted string, integer or boolean is a
// constant; anything else is a variable name.
func parseTerm(src string) (fo.Term, error) {
	s := strings.TrimSpace(src)
	if s == "" {
		return fo.Term{}, fmt.Errorf("empty term")
	}
	if quoted(s) {
		return fo.Const(instance.Str(s[1 : len(s)-1])), nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return fo.Const(instance.Int(n)), nil
	}
	switch s {
	case "true":
		return fo.Const(instance.Bool(true)), nil
	case "false":
		return fo.Const(instance.Bool(false)), nil
	}
	return fo.Var(s), nil
}

func quoted(s string) bool {
	return len(s) >= 2 &&
		((s[0] == '\'' && s[len(s)-1] == '\'') || (s[0] == '"' && s[len(s)-1] == '"'))
}

// splitTopLevel splits on commas outside parentheses and quotes — the body
// atom separator.
func splitTopLevel(s string) ([]string, error) {
	var out []string
	depth := 0
	var quote byte
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '(':
			depth++
		case c == ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("unbalanced parentheses in %q", s)
			}
		case c == ',' && depth == 0:
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if depth != 0 || quote != 0 {
		return nil, fmt.Errorf("unbalanced parentheses or quotes in %q", s)
	}
	out = append(out, s[start:])
	for i := range out {
		if strings.TrimSpace(out[i]) == "" {
			return nil, fmt.Errorf("empty element in %q", s)
		}
	}
	return out, nil
}

// splitArgs splits an argument list on commas outside quotes.
func splitArgs(s string) ([]string, error) {
	var out []string
	var quote byte
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == ',':
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if quote != 0 {
		return nil, fmt.Errorf("unbalanced quotes in %q", s)
	}
	out = append(out, s[start:])
	return out, nil
}

// ParseFD reads a functional dependency "R:0,1->2": the source positions of
// R determine the target position.
func ParseFD(src string) (FD, error) {
	rel, rest, ok := strings.Cut(src, ":")
	if !ok {
		return FD{}, fmt.Errorf("accesscheck: bad FD %q (want R:src,...->target)", src)
	}
	srcPart, dstPart, ok := strings.Cut(rest, "->")
	if !ok {
		return FD{}, fmt.Errorf("accesscheck: bad FD %q (want R:src,...->target)", src)
	}
	fd := FD{Rel: strings.TrimSpace(rel)}
	if fd.Rel == "" {
		return FD{}, fmt.Errorf("accesscheck: bad FD %q: empty relation", src)
	}
	var err error
	if fd.Source, err = parsePositions(srcPart); err != nil {
		return FD{}, fmt.Errorf("accesscheck: bad FD %q: %v", src, err)
	}
	fd.Target, err = strconv.Atoi(strings.TrimSpace(dstPart))
	if err != nil || fd.Target < 0 {
		return FD{}, fmt.Errorf("accesscheck: bad FD %q: bad target position %q", src, dstPart)
	}
	return fd, nil
}

// ParseID reads an inclusion dependency "R[0,1]<=S[2,3]" (the ASCII form of
// R[0,1] ⊆ S[2,3]; "⊆" is accepted too).
func ParseID(src string) (ID, error) {
	s := strings.ReplaceAll(src, "⊆", "<=")
	left, right, ok := strings.Cut(s, "<=")
	if !ok {
		return ID{}, fmt.Errorf("accesscheck: bad ID %q (want R[pos,...]<=S[pos,...])", src)
	}
	var id ID
	var err error
	if id.SrcRel, id.SrcPos, err = parseRelPositions(left); err != nil {
		return ID{}, fmt.Errorf("accesscheck: bad ID %q: %v", src, err)
	}
	if id.DstRel, id.DstPos, err = parseRelPositions(right); err != nil {
		return ID{}, fmt.Errorf("accesscheck: bad ID %q: %v", src, err)
	}
	if len(id.SrcPos) != len(id.DstPos) {
		return ID{}, fmt.Errorf("accesscheck: bad ID %q: position lists differ in length", src)
	}
	return id, nil
}

func parseRelPositions(s string) (string, []int, error) {
	s = strings.TrimSpace(s)
	name, rest, ok := strings.Cut(s, "[")
	name = strings.TrimSpace(name)
	if !ok || name == "" || !strings.HasSuffix(rest, "]") {
		return "", nil, fmt.Errorf("want Rel[pos,...], got %q", s)
	}
	pos, err := parsePositions(strings.TrimSuffix(rest, "]"))
	if err != nil {
		return "", nil, err
	}
	return name, pos, nil
}

func parsePositions(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad position %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

// ParseArity reads a relation arity declaration "R:3".
func ParseArity(src string) (string, int, error) {
	name, num, ok := strings.Cut(src, ":")
	name = strings.TrimSpace(name)
	if !ok || name == "" {
		return "", 0, fmt.Errorf("accesscheck: bad arity %q (want R:n)", src)
	}
	n, err := strconv.Atoi(strings.TrimSpace(num))
	if err != nil || n < 1 {
		return "", 0, fmt.Errorf("accesscheck: bad arity %q: want a positive count", src)
	}
	return name, n, nil
}

// ParseFact reads one typed fact "Rel(v1,v2,...)" against the schema: each
// value is coerced to the relation's column type (strings may be quoted;
// they must be when they would parse as another type).
func ParseFact(sch *Schema, src string) (string, Tuple, error) {
	s := strings.TrimSpace(src)
	name, rest, ok := strings.Cut(s, "(")
	name = strings.TrimSpace(name)
	if !ok || !strings.HasSuffix(rest, ")") {
		return "", nil, fmt.Errorf("accesscheck: bad fact %q (want Rel(v,...))", src)
	}
	rel, okRel := sch.Relation(name)
	if !okRel {
		return "", nil, fmt.Errorf("accesscheck: fact %q names unknown relation %q", src, name)
	}
	inner := strings.TrimSpace(strings.TrimSuffix(rest, ")"))
	var args []string
	if inner != "" {
		var err error
		args, err = splitArgs(inner)
		if err != nil {
			return "", nil, fmt.Errorf("accesscheck: bad fact %q: %v", src, err)
		}
	}
	if len(args) != rel.Arity() {
		return "", nil, fmt.Errorf("accesscheck: fact %q has %d values; relation %s has arity %d", src, len(args), name, rel.Arity())
	}
	t := make(Tuple, len(args))
	for i, a := range args {
		v, err := coerceValue(a, rel.TypeAt(i))
		if err != nil {
			return "", nil, fmt.Errorf("accesscheck: bad fact %q: %v", src, err)
		}
		t[i] = v
	}
	return name, t, nil
}

// ParseInstance builds an instance over the schema from textual facts.
func ParseInstance(sch *Schema, facts []string) (*Instance, error) {
	in := NewInstance(sch)
	for _, f := range facts {
		rel, t, err := ParseFact(sch, f)
		if err != nil {
			return nil, err
		}
		if _, err := in.Add(rel, t); err != nil {
			return nil, err
		}
	}
	return in, nil
}

// ParseBinding coerces textual values to the method's input types.
func ParseBinding(m *AccessMethod, vals []string) (Tuple, error) {
	types := m.InputTypes()
	if len(vals) != len(types) {
		return nil, fmt.Errorf("accesscheck: binding has %d values; method %s takes %d inputs", len(vals), m.Name(), len(types))
	}
	t := make(Tuple, len(vals))
	for i, v := range vals {
		val, err := coerceValue(v, types[i])
		if err != nil {
			return nil, fmt.Errorf("accesscheck: bad binding for %s: %v", m.Name(), err)
		}
		t[i] = val
	}
	return t, nil
}

func coerceValue(src string, typ schema.Type) (Value, error) {
	s := strings.TrimSpace(src)
	switch typ {
	case schema.TypeString:
		if quoted(s) {
			s = s[1 : len(s)-1]
		}
		return Str(s), nil
	case schema.TypeInt:
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("%q is not an int", src)
		}
		return Int(n), nil
	case schema.TypeBool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Value{}, fmt.Errorf("%q is not a bool", src)
		}
		return Bool(b), nil
	default:
		return Value{}, fmt.Errorf("unknown column type %v", typ)
	}
}
