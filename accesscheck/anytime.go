package accesscheck

// Anytime checking: suspend/resume over the canonical shard partition. A
// deadline-expired sharded search does not discard its work — CheckAnytime
// captures which root shards were fully explored, keeps the engines' memo
// tables warm, and returns a coverage-tagged resumable partial; running the
// identical check again against the returned Checkpoint executes only the
// unfinished shard subset (Options.Shards underneath) and merges with the
// suspended progress, so repeated budget pressure converges monotonically
// to the exact verdict instead of restarting from scratch every time.
//
// Soundness across rounds rests on two invariants the layers below
// maintain:
//
//   - a shard is recorded completed only when its whole subtree walk
//     returned without a witness, an error, a cap denial or a cancel
//     (lts.Report.CompletedShards), so skipping it in a later round can
//     never hide a witness;
//   - the persistent dominance memos scrub the commitments of walks that
//     were cut short before every search returns (accltl.SolverMemo /
//     autom.EmptinessMemo), so an entry a resumed round prunes against was
//     always fully searched by some earlier round.
//
// Exact results and suspended partials never mix: a Checkpoint is not an
// answer and is never served as one, and every resumable Result is
// Truncated, which the exact-only result caches refuse by construction.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"accltl/accesscheck/cache"
	"accltl/internal/accltl"
	"accltl/internal/autom"
)

// Checkpoint is the suspended state of one check: which canonical root
// shards have been fully explored so far, the cumulative search statistics,
// and the engines' warm memo tables. It is keyed by the shard-less
// fingerprint of the check (see Checker.Fingerprint — the same key a fabric
// coordinator routes by), so partial progress made by different shard
// subsets of the same check composes into one frontier.
//
// A Checkpoint serializes the rounds that use it: CheckAnytime holds an
// internal lock for the duration of a round, so concurrent identical
// requests resume one after the other against a consistent frontier rather
// than racing on the shared memo tables. All exported methods are safe for
// concurrent use.
type Checkpoint struct {
	mu        sync.Mutex
	key       string
	engine    Engine
	planSize  int
	completed map[int]bool

	rounds          int
	paths           int
	elapsed         time.Duration
	responsesCapped bool
	depth           int
	automStates     int

	solverMemo    *accltl.SolverMemo
	emptinessMemo *autom.EmptinessMemo
}

// newCheckpoint builds the suspended-search state for one fingerprint,
// with the warm memo armed by the checker's negative caches (nil-safe):
// resumed rounds then share the same process-wide Bloom filters as fresh
// searches.
func (c *Checker) newCheckpoint(key string, engine Engine, planSize int) *Checkpoint {
	cp := &Checkpoint{
		key:       key,
		engine:    engine,
		planSize:  planSize,
		completed: make(map[int]bool),
	}
	if engine == EngineAutomaton {
		cp.emptinessMemo = autom.NewEmptinessMemoNeg(c.negative.emptinessFilter())
	} else {
		cp.solverMemo = accltl.NewSolverMemoNeg(c.negative.solverFilter())
	}
	return cp
}

// Key returns the shard-less fingerprint the checkpoint belongs to.
func (cp *Checkpoint) Key() string {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.key
}

// Rounds counts the CheckAnytime rounds that have run against this
// checkpoint.
func (cp *Checkpoint) Rounds() int {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.rounds
}

// PlanSize is the size of the canonical shard partition the completed
// indexes refer to (zero while unknown — shard-subset rounds that never
// needed the full plan).
func (cp *Checkpoint) PlanSize() int {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.planSize
}

// Completed returns the fully-explored canonical shard indexes, ascending.
func (cp *Checkpoint) Completed() []int {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	out := make([]int, 0, len(cp.completed))
	for s := range cp.completed {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// CompletedWithin returns, ascending, the subset of the given canonical
// indexes the checkpoint has fully explored — what a fabric worker reports
// as the covered slice of its assigned shard group.
func (cp *Checkpoint) CompletedWithin(indexes []int) []int {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.completedWithinLocked(indexes)
}

func (cp *Checkpoint) completedWithinLocked(indexes []int) []int {
	seen := make(map[int]bool, len(indexes))
	var out []int
	for _, i := range indexes {
		if !seen[i] && cp.completed[i] {
			out = append(out, i)
		}
		seen[i] = true
	}
	sort.Ints(out)
	return out
}

// Coverage is the fraction of the plan's shards fully explored so far
// (zero while the plan size is unknown).
func (cp *Checkpoint) Coverage() float64 {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.planSize == 0 {
		return 0
	}
	return float64(len(cp.completed)) / float64(cp.planSize)
}

// CheckpointStore is a bounded LRU of suspended checks keyed by their
// shard-less fingerprint: the frontier persistence that turns a follow-up
// identical request into a resume. It deliberately mirrors the exact-result
// cache's shape but inverts its admission: only partial state lives here,
// and entries are removed — never served — once the check settles. Eviction
// under capacity pressure is safe: a resumed check that lost its checkpoint
// merely starts from scratch, exactly as if the store had never existed.
type CheckpointStore struct {
	lru *cache.LRU[*Checkpoint]
}

// NewCheckpointStore builds a store holding at most capacity suspended
// checks (capacity < 1 is treated as 1).
func NewCheckpointStore(capacity int) *CheckpointStore {
	return &CheckpointStore{lru: cache.New(capacity, func(cp *Checkpoint) bool { return cp != nil })}
}

// Get returns the suspended checkpoint for the fingerprint, if any.
func (s *CheckpointStore) Get(key string) (*Checkpoint, bool) {
	return s.lru.Get(key)
}

// Put stores the checkpoint under its own key.
func (s *CheckpointStore) Put(cp *Checkpoint) {
	if cp == nil {
		return
	}
	s.PutAs(cp.Key(), cp)
}

// PutAs stores the checkpoint under an explicit key. Fabric workers use
// this to scope frontiers per shard group — the shard-keyed fingerprint —
// so sibling groups of one check never share a checkpoint's cumulative
// statistics (each group's reported paths must cover exactly its own
// slices for the coordinator's merge arithmetic to stay honest).
func (s *CheckpointStore) PutAs(key string, cp *Checkpoint) {
	if cp == nil {
		return
	}
	s.lru.Add(key, cp)
}

// Remove drops the fingerprint's checkpoint, if any: called when the check
// reaches a final answer so stale frontiers cannot be resumed.
func (s *CheckpointStore) Remove(key string) bool {
	return s.lru.Remove(key)
}

// Len reports the number of suspended checks.
func (s *CheckpointStore) Len() int { return s.lru.Len() }

// Stats snapshots the store counters.
func (s *CheckpointStore) Stats() cache.Stats { return s.lru.Stats() }

// anytimeKey is the checkpoint identity of a check under this checker: the
// fingerprint with the shard subset stripped, so every shard slice of one
// check shares a frontier. For checkers without WithShards it equals
// Fingerprint.
func (c *Checker) anytimeKey(sch *Schema, f Formula) string {
	if c.shards == nil {
		return c.Fingerprint(sch, f)
	}
	shardless := *c
	shardless.shards = nil
	return shardless.Fingerprint(sch, f)
}

// CheckAnytime is Check with suspend/resume: it runs (a slice of) the check
// against prev's frontier and returns the answer plus the checkpoint to
// carry forward.
//
// Contract:
//
//   - prev nil starts fresh; prev non-nil must come from a CheckAnytime of
//     an identically-configured checker on the same schema and formula
//     (same shard-less fingerprint), else an error is returned.
//   - An exact answer (witness found, or every targeted shard explored)
//     comes back with Coverage 1 and Resumable false; the caller should
//     drop any stored checkpoint for the key. The returned checkpoint is
//     still non-nil so shard-sliced callers can keep the warm memo for
//     sibling slices.
//   - A deadline/cancel expiry that completed at least one targeted shard
//     (this round or a previous one) returns a nil error and a resumable
//     partial: Satisfiable false, Truncated true, Coverage < 1, and the
//     checkpoint capturing the remaining frontier. Re-invoking with that
//     checkpoint executes only the unfinished shards.
//   - An expiry with no completed shard returns (nil, checkpoint, ctx
//     error): no honest coverage to report, but the checkpoint's warm memo
//     still accelerates a retry.
//   - A search whose round hit the path cap (WithMaxPaths) is a final
//     truncated answer, not a resumable one — the cap is a per-search
//     budget whose exact semantics do not compose across rounds — and the
//     returned checkpoint is nil.
//   - Unshardable checks (the plan has fewer than two shards, or planning
//     failed) fall back to plain Check: exact or error, nothing to resume.
//
// PathsExplored, Elapsed and ResponsesCapped accumulate across rounds;
// Depth, the verdict and the witness are those of the (sub)search. The
// checkpoint serializes its rounds: concurrent identical requests resume
// one at a time.
func (c *Checker) CheckAnytime(ctx context.Context, sch *Schema, f Formula, prev *Checkpoint) (*Result, *Checkpoint, error) {
	if sch == nil {
		return nil, nil, fmt.Errorf("accesscheck: CheckAnytime: nil schema")
	}
	if f == nil {
		return nil, nil, fmt.Errorf("accesscheck: CheckAnytime: nil formula")
	}
	if ctx == nil {
		ctx = context.Background()
	}

	engine := c.resolveEngine(f)
	key := c.anytimeKey(sch, f)
	if prev != nil {
		if pk := prev.Key(); pk != key {
			return nil, nil, fmt.Errorf("accesscheck: CheckAnytime: checkpoint belongs to a different check (key %q, want %q)", pk, key)
		}
	}

	// Resolve the target shard set and the plan size. A shard-restricted
	// checker targets its configured subset and can defer the plan size
	// (its caller — the fabric worker — knows the plan already); a whole
	// check targets the full canonical partition and needs the plan once.
	var target []int
	planSize := 0
	if prev != nil {
		planSize = prev.PlanSize()
	}
	if c.shards != nil {
		target = dedupSortedShards(c.shards)
	} else {
		if planSize == 0 {
			plan, _, err := c.ShardPlan(ctx, sch, f)
			if err != nil || len(plan) < 2 {
				// Unshardable (or planning failed): there is no frontier to
				// slice, so anytime degenerates to the plain check.
				res, cerr := c.Check(ctx, sch, f)
				if cerr != nil {
					return nil, nil, cerr
				}
				res.Coverage = 1
				return res, nil, nil
			}
			planSize = len(plan)
		}
		target = make([]int, planSize)
		for i := range target {
			target[i] = i
		}
	}

	cp := prev
	if cp == nil {
		cp = c.newCheckpoint(key, engine, planSize)
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.planSize == 0 {
		cp.planSize = planSize
	}

	remaining := make([]int, 0, len(target))
	for _, s := range target {
		if !cp.completed[s] {
			remaining = append(remaining, s)
		}
	}
	if len(remaining) == 0 {
		// Prior rounds already explored every targeted shard without a
		// witness: synthesize the exact-for-target answer from the frontier.
		return c.anytimeExact(f, engine, cp, target, nil), cp, nil
	}
	if err := ctx.Err(); err != nil {
		// Budget already blown before this round could start.
		return c.anytimeAfterExpiry(f, engine, cp, target, err)
	}

	attempt := remaining
	if c.anytimeChunk > 0 && len(attempt) > c.anytimeChunk {
		attempt = attempt[:c.anytimeChunk]
	}

	round := *c
	round.shards = attempt
	round.solverMemo = cp.solverMemo
	round.emptinessMemo = cp.emptinessMemo

	start := time.Now()
	sr, automStates, err := round.runSolve(ctx, sch, f, engine)
	cp.rounds++
	cp.paths += sr.PathsExplored
	cp.elapsed += time.Since(start)
	cp.responsesCapped = cp.responsesCapped || sr.ResponsesCapped
	if sr.Depth > 0 {
		cp.depth = sr.Depth
	}
	if automStates > 0 {
		cp.automStates = automStates
	}
	if err == nil && !sr.Satisfiable && !sr.Truncated {
		// The round ran to completion: every attempted shard was fully
		// explored, including the degenerate case where the root visit
		// settled the space before the shard walk began (the engine then
		// reports no per-shard completions at all).
		for _, s := range attempt {
			cp.completed[s] = true
		}
	} else {
		for _, s := range sr.CompletedShards {
			cp.completed[s] = true
		}
	}

	switch {
	case err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled):
		// Real failure: nothing to answer, nothing worth resuming.
		return nil, nil, err
	case err != nil:
		return c.anytimeAfterExpiry(f, engine, cp, target, err)
	case sr.Satisfiable:
		res := c.anytimeBase(f, engine, cp)
		res.Satisfiable = true
		res.Witness = sr.Witness
		res.Depth = sr.Depth
		res.Coverage = 1
		c.tagShardSubset(res, cp, target)
		return res, cp, nil
	case sr.Truncated:
		// Path-capped round: the cap's exact budget semantics do not
		// compose across rounds, so this is a final truncated answer — and
		// the checkpoint dies with it (its frontier would misrepresent a
		// search the cap, not the shard set, cut short).
		res := c.anytimeBase(f, engine, cp)
		res.Truncated = true
		res.Depth = sr.Depth
		res.Coverage = 1
		c.tagShardSubset(res, cp, target)
		return res, nil, nil
	default:
		done := cp.completedWithinLocked(target)
		if len(done) == len(target) {
			return c.anytimeExact(f, engine, cp, target, &sr), cp, nil
		}
		// Chunked round: more frontier remains by construction.
		return c.anytimePartial(f, engine, cp, target, len(done)), cp, nil
	}
}

// anytimeAfterExpiry resolves a blown budget against the frontier: a
// resumable partial when at least one targeted shard is covered, the bare
// context error (plus the warm checkpoint) when none is. Called with cp.mu
// held.
func (c *Checker) anytimeAfterExpiry(f Formula, engine Engine, cp *Checkpoint, target []int, err error) (*Result, *Checkpoint, error) {
	done := cp.completedWithinLocked(target)
	if len(done) == 0 {
		return nil, cp, err
	}
	if len(done) == len(target) {
		// The expiry hit after the frontier was already complete (a resume
		// whose prior rounds covered everything): still an exact answer.
		return c.anytimeExact(f, engine, cp, target, nil), cp, nil
	}
	return c.anytimePartial(f, engine, cp, target, len(done)), cp, nil
}

// anytimeBase builds the classification scaffold of a Result with the
// cumulative round statistics folded in. Called with cp.mu held.
func (c *Checker) anytimeBase(f Formula, engine Engine, cp *Checkpoint) *Result {
	info := accltl.Classify(f)
	frag, inFragment := info.Fragment()
	return &Result{
		Info:            info,
		Fragment:        frag,
		InFragment:      inFragment,
		Decidable:       inFragment && frag.Decidable(),
		Engine:          engine,
		PathsExplored:   cp.paths,
		Depth:           cp.depth,
		AutomatonStates: cp.automStates,
		Elapsed:         cp.elapsed,
	}
}

// anytimeExact is the exact-for-target unsatisfiable answer synthesized
// from a complete frontier. sr, when non-nil, is the round that completed
// the cover (its Depth is the freshest bound). Called with cp.mu held.
func (c *Checker) anytimeExact(f Formula, engine Engine, cp *Checkpoint, target []int, sr *accltl.SolveResult) *Result {
	res := c.anytimeBase(f, engine, cp)
	if sr != nil && sr.Depth > 0 {
		res.Depth = sr.Depth
	}
	res.Coverage = 1
	res.ResponsesCapped = cp.responsesCapped
	res.Truncated = cp.responsesCapped
	c.tagShardSubset(res, cp, target)
	return res
}

// anytimePartial is the resumable coverage-tagged partial answer: no
// witness in the explored region, nothing claimed about the rest. Called
// with cp.mu held.
func (c *Checker) anytimePartial(f Formula, engine Engine, cp *Checkpoint, target []int, done int) *Result {
	res := c.anytimeBase(f, engine, cp)
	res.Truncated = true
	res.ResponsesCapped = cp.responsesCapped
	res.Resumable = true
	res.Coverage = float64(done) / float64(len(target))
	res.ShardsCompleted = done
	res.ShardsTotal = cp.planSize
	return res
}

// tagShardSubset mirrors Check's coverage tagging for shard-restricted
// checkers on exact answers: a subset verdict names what it covers. Whole
// checks keep zero tags, like Check. Called with cp.mu held.
func (c *Checker) tagShardSubset(res *Result, cp *Checkpoint, target []int) {
	if c.shards == nil {
		return
	}
	res.ShardsCompleted = len(target)
	res.ShardsTotal = cp.planSize
}

// dedupSortedShards collapses duplicates and sorts ascending, the engine's
// own canonicalization of a shard subset.
func dedupSortedShards(indexes []int) []int {
	seen := make(map[int]bool, len(indexes))
	out := make([]int, 0, len(indexes))
	for _, i := range indexes {
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}
