package accesscheck_test

import (
	"context"
	"testing"

	"accltl/accesscheck"
)

// negDeepUnsat is unsatisfiable only by exhausting the bounded space
// ("eventually bind AcM1, yet never bind AcM1"), so its search visits
// enough dominated revisits to drive the Bloom filter's fast path.
const negDeepUnsat = `(F [exists n. bind AcM1(n)]) & (G ![exists n. bind AcM1(n)])`

// TestNegativeCacheParallelEquivalence is the negative-cache soundness
// golden test: across an option grid and W ∈ {1, 4}, verdicts with
// WithNegativeCache on and off must be bit-for-bit identical — the Bloom
// filter is an accelerator of the dominance memo's fast path, never a
// pruner. (The name matches the CI parallel-equivalence race step, so
// live walker interleavings exercise the lock-free path on every push.)
func TestNegativeCacheParallelEquivalence(t *testing.T) {
	sch, err := accesscheck.ParseSchema(parRelations, parMethods)
	if err != nil {
		t.Fatal(err)
	}
	grid := []struct {
		name string
		opts []accesscheck.Option
	}{
		{"plain", nil},
		{"grounded", []accesscheck.Option{accesscheck.WithGrounded()}},
		{"idempotent", []accesscheck.Option{accesscheck.WithIdempotentOnly()}},
		{"automaton", []accesscheck.Option{accesscheck.WithEngine(accesscheck.EngineAutomaton)}},
		{"depth2", []accesscheck.Option{accesscheck.WithMaxDepth(2)}},
	}
	// negDeepUnsat forces exhaustion of the whole bounded space — the two
	// easy fixtures settle in a couple of steps, before the dominance memo
	// (and so the filter) is ever consulted.
	for name, src := range map[string]string{"sat": parSatFormula, "unsat": parUnsatFormula, "deep": negDeepUnsat} {
		f, err := accesscheck.ParseFormula(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range grid {
			for _, w := range []int{1, 4} {
				base := append([]accesscheck.Option{accesscheck.WithParallelism(w)}, g.opts...)
				if name == "deep" && g.name != "depth2" {
					// Keep the exhaustive search affordable under -race; the
					// equivalence claim is per-depth anyway.
					base = append(base, accesscheck.WithMaxDepth(4))
				}
				off, offErr := accesscheck.Check(context.Background(), sch, f, base...)
				on, onErr := accesscheck.Check(context.Background(), sch, f,
					append(append([]accesscheck.Option{}, base...), accesscheck.WithNegativeCache(1<<16))...)
				if offErr != nil || onErr != nil {
					// Fragment rejections (e.g. the automaton engine on a
					// non-binding-positive formula) must not depend on the
					// filter either.
					if (offErr == nil) != (onErr == nil) {
						t.Errorf("%s/%s w=%d: error parity broken: off=%v on=%v", name, g.name, w, offErr, onErr)
					}
					continue
				}
				if on.Satisfiable != off.Satisfiable || on.Truncated != off.Truncated ||
					on.Fragment != off.Fragment || on.InFragment != off.InFragment ||
					on.Decidable != off.Decidable || on.Engine != off.Engine || on.Depth != off.Depth {
					t.Errorf("%s/%s w=%d: verdicts diverge with the negative cache on:\n on=%+v\noff=%+v",
						name, g.name, w, on, off)
				}
				if on.Satisfiable {
					ok, err := accesscheck.Holds(f, on.Witness)
					if err != nil || !ok {
						t.Errorf("%s/%s w=%d: witness rejected by direct semantics: %v %v", name, g.name, w, ok, err)
					}
				}
			}
		}
	}
}

// TestNegativeCacheSharedStoreEquivalence shares ONE process-wide filter
// set across many different checks (the server's usage): cross-request
// filter bits are only false positives, so verdicts must still match
// per-check fresh-filter runs.
func TestNegativeCacheSharedStoreEquivalence(t *testing.T) {
	sch, err := accesscheck.ParseSchema(parRelations, parMethods)
	if err != nil {
		t.Fatal(err)
	}
	shared := accesscheck.NewNegativeCaches(1 << 14) // small: collisions likely
	for round := 0; round < 3; round++ {
		for name, src := range map[string]string{"sat": parSatFormula, "unsat": parUnsatFormula, "deep": negDeepUnsat} {
			f, err := accesscheck.ParseFormula(src)
			if err != nil {
				t.Fatal(err)
			}
			want, err := accesscheck.Check(context.Background(), sch, f,
				accesscheck.WithParallelism(4), accesscheck.WithMaxDepth(4))
			if err != nil {
				t.Fatal(err)
			}
			got, err := accesscheck.Check(context.Background(), sch, f,
				accesscheck.WithParallelism(4), accesscheck.WithMaxDepth(4),
				accesscheck.WithNegativeCacheStore(shared))
			if err != nil {
				t.Fatalf("round %d %s: %v", round, name, err)
			}
			if got.Satisfiable != want.Satisfiable || got.Truncated != want.Truncated {
				t.Errorf("round %d %s: shared-filter verdict %v/%v, fresh %v/%v",
					round, name, got.Satisfiable, got.Truncated, want.Satisfiable, want.Truncated)
			}
		}
	}
	if shared.Solver == nil || shared.Emptiness == nil {
		t.Fatal("NewNegativeCaches left a filter nil")
	}
	if st := shared.Solver.Stats(); st.Inserts == 0 {
		t.Error("shared solver filter was never consulted")
	}
}

func TestWithNegativeCacheValidation(t *testing.T) {
	if _, err := accesscheck.NewChecker(accesscheck.WithNegativeCache(-1)); err == nil {
		t.Error("negative bit budget accepted")
	}
	for _, n := range []int{0, 1, 1 << 20} {
		if _, err := accesscheck.NewChecker(accesscheck.WithNegativeCache(n)); err != nil {
			t.Errorf("WithNegativeCache(%d) rejected: %v", n, err)
		}
	}
	if accesscheck.NewNegativeCaches(0) != nil {
		t.Error("NewNegativeCaches(0) should disable, not allocate")
	}
}

// TestFingerprintIgnoresNegativeCache pins the cache-identity rule: the
// filter is verdict-neutral, so checkers differing only in it collapse
// onto one cache entry.
func TestFingerprintIgnoresNegativeCache(t *testing.T) {
	sch, err := accesscheck.ParseSchema(parRelations, parMethods)
	if err != nil {
		t.Fatal(err)
	}
	f, err := accesscheck.ParseFormula(parSatFormula)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := accesscheck.NewChecker()
	if err != nil {
		t.Fatal(err)
	}
	armed, err := accesscheck.NewChecker(accesscheck.WithNegativeCache(1 << 16))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Fingerprint(sch, f) != armed.Fingerprint(sch, f) {
		t.Error("Fingerprint differs across negative-cache arming")
	}
}
