package accesscheck_test

import (
	"context"
	"testing"

	"accltl/accesscheck"
)

// TestShardPlanDeterministicAcrossEngines: two independently configured
// checkers derive identical plans, and the plan is unaffected by
// parallelism — the determinism the distributed fabric's wire shards rely
// on.
func TestShardPlanDeterministicAcrossEngines(t *testing.T) {
	sch, err := accesscheck.ParseSchema(parRelations, parMethods)
	if err != nil {
		t.Fatal(err)
	}
	f, err := accesscheck.ParseFormula(parSatFormula)
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []accesscheck.Engine{accesscheck.EngineAuto, accesscheck.EngineBounded, accesscheck.EngineAutomaton} {
		a, err := accesscheck.NewChecker(accesscheck.WithEngine(eng))
		if err != nil {
			t.Fatal(err)
		}
		b, err := accesscheck.NewChecker(accesscheck.WithEngine(eng), accesscheck.WithParallelism(8))
		if err != nil {
			t.Fatal(err)
		}
		pa, capA, err := a.ShardPlan(context.Background(), sch, f)
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		pb, capB, err := b.ShardPlan(context.Background(), sch, f)
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		if len(pa) == 0 {
			t.Fatalf("%v: empty plan", eng)
		}
		if capA != capB || len(pa) != len(pb) {
			t.Fatalf("%v: plans diverged: %d/%v vs %d/%v", eng, len(pa), capA, len(pb), capB)
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("%v: shard %d diverged: %+v vs %+v", eng, i, pa[i], pb[i])
			}
		}
	}
}

// TestShardSubsetMergeMatchesFullCheck: running every shard as its own
// restricted check and merging per the documented fabric semantics
// (verdict OR, caps OR on unsat) reproduces the full check's verdict.
func TestShardSubsetMergeMatchesFullCheck(t *testing.T) {
	sch, err := accesscheck.ParseSchema(parRelations, parMethods)
	if err != nil {
		t.Fatal(err)
	}
	for name, src := range map[string]string{"sat": parSatFormula, "unsat": parUnsatFormula} {
		f, err := accesscheck.ParseFormula(src)
		if err != nil {
			t.Fatal(err)
		}
		full, err := accesscheck.Check(context.Background(), sch, f)
		if err != nil {
			t.Fatalf("%s full: %v", name, err)
		}
		chk, err := accesscheck.NewChecker()
		if err != nil {
			t.Fatal(err)
		}
		plan, _, err := chk.ShardPlan(context.Background(), sch, f)
		if err != nil {
			t.Fatalf("%s plan: %v", name, err)
		}
		if len(plan) == 0 {
			t.Fatalf("%s: empty plan", name)
		}
		sat := false
		trunc := false
		var witness *accesscheck.Path
		for _, sh := range plan {
			part, err := accesscheck.Check(context.Background(), sch, f, accesscheck.WithShards(sh.Index))
			if err != nil {
				t.Fatalf("%s shard %d: %v", name, sh.Index, err)
			}
			if part.Satisfiable && witness == nil {
				witness = part.Witness
			}
			sat = sat || part.Satisfiable
			trunc = trunc || part.Truncated
		}
		if sat != full.Satisfiable {
			t.Errorf("%s: merged verdict %v, full %v", name, sat, full.Satisfiable)
		}
		if !sat && trunc != full.Truncated {
			t.Errorf("%s: merged Truncated %v, full %v", name, trunc, full.Truncated)
		}
		if sat {
			ok, err := accesscheck.Holds(f, witness)
			if err != nil || !ok {
				t.Errorf("%s: merged witness rejected by direct semantics: %v %v", name, ok, err)
			}
		}
	}
}

// TestWithShardsValidation: the option rejects empty and negative input at
// construction; out-of-partition indexes surface from Check.
func TestWithShardsValidation(t *testing.T) {
	if _, err := accesscheck.NewChecker(accesscheck.WithShards()); err == nil {
		t.Error("empty shard list accepted")
	}
	if _, err := accesscheck.NewChecker(accesscheck.WithShards(-1)); err == nil {
		t.Error("negative shard index accepted")
	}
	sch, err := accesscheck.ParseSchema(parRelations, parMethods)
	if err != nil {
		t.Fatal(err)
	}
	f, err := accesscheck.ParseFormula(parSatFormula)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := accesscheck.Check(context.Background(), sch, f, accesscheck.WithShards(1<<20)); err == nil {
		t.Error("out-of-partition shard index accepted by Check")
	}
}

// TestFingerprintSeparatesShardSubsets pins the cache-identity rule for
// shard-restricted checks: subsets are part of what is computed (unlike
// parallelism), different subsets must not collide, and the canonical form
// (sorted, deduplicated) decides equality.
func TestFingerprintSeparatesShardSubsets(t *testing.T) {
	sch, err := accesscheck.ParseSchema(parRelations, parMethods)
	if err != nil {
		t.Fatal(err)
	}
	f, err := accesscheck.ParseFormula(parSatFormula)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(opts ...accesscheck.Option) string {
		c, err := accesscheck.NewChecker(opts...)
		if err != nil {
			t.Fatal(err)
		}
		return c.Fingerprint(sch, f)
	}
	full := mk()
	s0 := mk(accesscheck.WithShards(0))
	s1 := mk(accesscheck.WithShards(1))
	if full == s0 {
		t.Error("shard-restricted fingerprint equals full-check fingerprint")
	}
	if s0 == s1 {
		t.Error("different shard subsets share a fingerprint")
	}
	if mk(accesscheck.WithShards(1, 0, 1)) != mk(accesscheck.WithShards(0, 1)) {
		t.Error("fingerprint not canonical over shard order/duplicates")
	}
	if mk(accesscheck.WithShards(0), accesscheck.WithParallelism(4)) != s0 {
		t.Error("parallelism leaked into shard-restricted fingerprint")
	}
}
