package accesscheck

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"sort"
)

// FingerprintSchemeVersion names the fingerprint scheme currently in
// force. Bump it whenever Fingerprint or FingerprintTask change what they
// hash or how they frame it: persistent cache tiers stamp their logs with
// the scheme they were minted under and discard — loudly — any log carrying
// another stamp, because serving old entries under new keys (or vice
// versa) would be silent corruption rather than a mere miss.
const FingerprintSchemeVersion = "fp-v1"

// Fingerprint returns a canonical key identifying what a Check on (sch, f)
// under this checker's configuration computes: the schema's declaration
// text, the formula's rendering, and every option that can change the
// verdict or its exactness (engine, path restrictions, bounds, initial
// instance and universe overrides). Two calls agree on the fingerprint iff
// Check would run the same search, which makes it the cache key of
// accesscheck/cache — identical requests served by accesscheck/server
// collapse onto one entry.
//
// The key is a hex-encoded SHA-256, so it is safe to use in URLs, log
// lines and on-disk layouts; it is not reversible.
//
// WithParallelism is deliberately excluded: it is an execution strategy,
// not part of what is computed. Exhaustive (non-truncated) verdicts are
// identical for every parallelism, truncated results are never cached, and
// any cached witness was verified against the direct semantics — so a
// result computed at one parallelism is a correct answer for the same check
// at any other, and splitting the cache by walker count would only lower
// its hit rate. WithNegativeCache/WithNegativeCacheStore are excluded for
// the same reason: the Bloom filter is verdict-neutral by construction.
//
// WithShards, by contrast, is included (canonicalized: sorted, deduplicated)
// when set: a shard-restricted check computes a partial answer over a
// subset of the partition, which is a genuinely different computation from
// the full check and from every other subset. Without it, a worker caching
// its partial verdict under the full check's key would poison any
// subsequent full check of the same inputs. Coordinators wanting a routing
// key that all shards of one check share should fingerprint a checker
// without the shard option.
func (c *Checker) Fingerprint(sch *Schema, f Formula) string {
	h := newHasher()
	field := h.field
	// The task-kind discriminator leads every fingerprint (see
	// FingerprintTask): no containment/relevance/chase key can collide with
	// a check key in any cache tier.
	field("task", TaskCheck.String())
	if sch != nil {
		field("schema", sch.String())
	}
	if f != nil {
		field("formula", f.String())
	}
	field("engine", c.engine.String())
	field("grounded", boolKey(c.grounded))
	field("idempotent", boolKey(c.idempotentOnly))
	field("allExact", boolKey(c.allExact))
	if len(c.exactMethods) > 0 {
		names := make([]string, 0, len(c.exactMethods))
		for n := range c.exactMethods {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			field("exact", n)
		}
	}
	if c.shards != nil {
		sel := make([]int, len(c.shards))
		copy(sel, c.shards)
		sort.Ints(sel)
		prev := -1
		for _, i := range sel {
			if i == prev {
				continue
			}
			prev = i
			field("shard", fmt.Sprintf("%d", i))
		}
	}
	field("maxDepth", fmt.Sprintf("%d", c.maxDepth))
	field("maxPaths", fmt.Sprintf("%d", c.maxPaths))
	field("maxResponseChoices", fmt.Sprintf("%d", c.maxResponseChoices))
	if c.initial != nil {
		field("initial", c.initial.Fingerprint())
	}
	if c.universe != nil {
		field("universe", c.universe.Fingerprint())
	}
	return h.sum()
}

// FingerprintTask is Fingerprint generalized over task kinds: a canonical
// key for what Do on this task computes. Every key starts with the task
// kind, so results of different kinds can never collide in any cache tier —
// a containment verdict cached under its key can never answer a check of
// textually identical schema/formula inputs, and vice versa.
//
// TaskCheck keys equal Fingerprint(schema, formula) — the check pipeline is
// the one task the checker's options configure, and they are folded in
// exactly as before. The other kinds are canonical in their payload alone
// (their verdicts do not read the checker's options), so their keys cover
// the payload and nothing else: two differently-configured checkers agree
// on the key of the same containment task, and their cached results are
// interchangeable.
func (c *Checker) FingerprintTask(t *Task) (string, error) {
	if err := t.Validate(); err != nil {
		return "", err
	}
	switch t.Kind {
	case TaskCheck:
		return c.Fingerprint(t.Check.Schema, t.Check.Formula), nil
	case TaskContainment:
		ct := t.Containment
		h := newHasher()
		h.field("task", TaskContainment.String())
		h.field("mode", ct.Mode.String())
		switch ct.Mode {
		case ContainUCQ:
			h.field("q1", ct.Q1.String())
			h.field("q2", ct.Q2.String())
		case ContainDatalog:
			h.field("program", ct.Program.String())
			h.field("q2", ct.Q2.String())
			depth := ct.Depth
			if depth == 0 {
				// Canonical: an explicit depth equal to the derived default
				// is the same computation as depth 0.
				depth = ct.Program.DefaultContainmentDepth()
			}
			h.field("depth", fmt.Sprintf("%d", depth))
		case ContainAccess:
			h.field("schema", ct.Schema.String())
			h.field("q1", ct.Q1.String())
			h.field("q2", ct.Q2.String())
			h.field("depth", fmt.Sprintf("%d", ct.Depth))
			if ct.Seed != nil {
				h.field("seed", ct.Seed.Fingerprint())
			}
		}
		return h.sum(), nil
	case TaskRelevance:
		rt := t.Relevance
		h := newHasher()
		h.field("task", TaskRelevance.String())
		h.field("schema", rt.Schema.String())
		h.field("probe", rt.Probe)
		for _, v := range rt.Binding {
			h.field("bind", v.Key())
		}
		h.field("query", rt.Query.String())
		h.field("grounded", boolKey(rt.Grounded))
		h.field("maxDepth", fmt.Sprintf("%d", rt.MaxDepth))
		if rt.Hidden != nil {
			h.field("hidden", rt.Hidden.Fingerprint())
		}
		if rt.Seed != nil {
			h.field("seed", rt.Seed.Fingerprint())
		}
		if rt.Universe != nil {
			h.field("universe", rt.Universe.Fingerprint())
		}
		return h.sum(), nil
	case TaskChase:
		ch := t.Chase
		h := newHasher()
		h.field("task", TaskChase.String())
		rels := make([]string, 0, len(ch.Arities))
		for r := range ch.Arities {
			rels = append(rels, r)
		}
		sort.Strings(rels)
		for _, r := range rels {
			h.field("arity", fmt.Sprintf("%s=%d", r, ch.Arities[r]))
		}
		fds := make([]string, len(ch.FDs))
		for i, d := range ch.FDs {
			fds[i] = d.String()
		}
		sort.Strings(fds)
		for _, d := range fds {
			h.field("fd", d)
		}
		ids := make([]string, len(ch.IDs))
		for i, d := range ch.IDs {
			ids[i] = d.String()
		}
		sort.Strings(ids)
		for _, d := range ids {
			h.field("id", d)
		}
		h.field("sigma", ch.Sigma.String())
		budget := ch.StepBudget
		if budget == 0 {
			budget = 10000 // the chase default, canonicalized like depth above
		}
		h.field("budget", fmt.Sprintf("%d", budget))
		return h.sum(), nil
	default:
		return "", fmt.Errorf("accesscheck: FingerprintTask: unknown task kind %v", t.Kind)
	}
}

// hasher accumulates (name, value) fields into a SHA-256 with unambiguous
// framing.
type hasher struct{ h hash.Hash }

func newHasher() *hasher { return &hasher{h: sha256.New()} }

func (x *hasher) field(name, value string) {
	io.WriteString(x.h, name)
	x.h.Write([]byte{0})
	io.WriteString(x.h, value)
	x.h.Write([]byte{0x1e})
}

func (x *hasher) sum() string { return hex.EncodeToString(x.h.Sum(nil)) }

func boolKey(b bool) string {
	if b {
		return "1"
	}
	return "0"
}
