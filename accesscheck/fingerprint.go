package accesscheck

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
)

// Fingerprint returns a canonical key identifying what a Check on (sch, f)
// under this checker's configuration computes: the schema's declaration
// text, the formula's rendering, and every option that can change the
// verdict or its exactness (engine, path restrictions, bounds, initial
// instance and universe overrides). Two calls agree on the fingerprint iff
// Check would run the same search, which makes it the cache key of
// accesscheck/cache — identical requests served by accesscheck/server
// collapse onto one entry.
//
// The key is a hex-encoded SHA-256, so it is safe to use in URLs, log
// lines and on-disk layouts; it is not reversible.
//
// WithParallelism is deliberately excluded: it is an execution strategy,
// not part of what is computed. Exhaustive (non-truncated) verdicts are
// identical for every parallelism, truncated results are never cached, and
// any cached witness was verified against the direct semantics — so a
// result computed at one parallelism is a correct answer for the same check
// at any other, and splitting the cache by walker count would only lower
// its hit rate.
//
// WithShards, by contrast, is included (canonicalized: sorted, deduplicated)
// when set: a shard-restricted check computes a partial answer over a
// subset of the partition, which is a genuinely different computation from
// the full check and from every other subset. Without it, a worker caching
// its partial verdict under the full check's key would poison any
// subsequent full check of the same inputs. Coordinators wanting a routing
// key that all shards of one check share should fingerprint a checker
// without the shard option.
func (c *Checker) Fingerprint(sch *Schema, f Formula) string {
	h := sha256.New()
	field := func(name, value string) {
		io.WriteString(h, name)
		h.Write([]byte{0})
		io.WriteString(h, value)
		h.Write([]byte{0x1e})
	}
	if sch != nil {
		field("schema", sch.String())
	}
	if f != nil {
		field("formula", f.String())
	}
	field("engine", c.engine.String())
	field("grounded", boolKey(c.grounded))
	field("idempotent", boolKey(c.idempotentOnly))
	field("allExact", boolKey(c.allExact))
	if len(c.exactMethods) > 0 {
		names := make([]string, 0, len(c.exactMethods))
		for n := range c.exactMethods {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			field("exact", n)
		}
	}
	if c.shards != nil {
		sel := make([]int, len(c.shards))
		copy(sel, c.shards)
		sort.Ints(sel)
		prev := -1
		for _, i := range sel {
			if i == prev {
				continue
			}
			prev = i
			field("shard", fmt.Sprintf("%d", i))
		}
	}
	field("maxDepth", fmt.Sprintf("%d", c.maxDepth))
	field("maxPaths", fmt.Sprintf("%d", c.maxPaths))
	field("maxResponseChoices", fmt.Sprintf("%d", c.maxResponseChoices))
	if c.initial != nil {
		field("initial", c.initial.Fingerprint())
	}
	if c.universe != nil {
		field("universe", c.universe.Fingerprint())
	}
	return hex.EncodeToString(h.Sum(nil))
}

func boolKey(b bool) string {
	if b {
		return "1"
	}
	return "0"
}
