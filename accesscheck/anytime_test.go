package accesscheck_test

// Golden tests for the anytime checkpoint/resume spine: a check sliced
// into budget-starved rounds must converge to exactly the answer the
// uninterrupted check gives, coverage must grow monotonically, and the
// checkpoint store must evict and serialize safely. Test names carry
// "Sharded" so CI's race pass picks them up.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"accltl/accesscheck"
)

// anytimeFixture parses the shared parallel-test schema and formula and
// skips the test unless the canonical plan has at least two shards (the
// anytime machinery degenerates to plain Check below that).
func anytimeFixture(t *testing.T, src string, opts ...accesscheck.Option) (*accesscheck.Schema, accesscheck.Formula, *accesscheck.Checker) {
	t.Helper()
	sch, err := accesscheck.ParseSchema(parRelations, parMethods)
	if err != nil {
		t.Fatal(err)
	}
	f, err := accesscheck.ParseFormula(src)
	if err != nil {
		t.Fatal(err)
	}
	chk, err := accesscheck.NewChecker(opts...)
	if err != nil {
		t.Fatal(err)
	}
	plan, _, err := chk.ShardPlan(context.Background(), sch, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) < 2 {
		t.Skipf("plan has %d shards; anytime needs at least 2", len(plan))
	}
	return sch, f, chk
}

// TestAnytimeShardedResumeEquivalence: a check forced through one-shard
// rounds (WithAnytimeChunk(1)), each round resuming the previous round's
// checkpoint, must end on the same verdict as the uninterrupted check, with
// Coverage 1, any witness valid under the direct semantics, and every
// intermediate answer an honest coverage-tagged partial.
func TestAnytimeShardedResumeEquivalence(t *testing.T) {
	for name, src := range map[string]string{"sat": parSatFormula, "unsat": parUnsatFormula} {
		for _, eng := range []accesscheck.Engine{accesscheck.EngineBounded, accesscheck.EngineAutomaton} {
			for _, w := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/%s/w%d", name, eng, w), func(t *testing.T) {
					base := []accesscheck.Option{accesscheck.WithEngine(eng), accesscheck.WithParallelism(w)}
					sch, f, _ := anytimeFixture(t, src, base...)
					full, err := accesscheck.Check(context.Background(), sch, f, base...)
					if err != nil {
						t.Fatal(err)
					}

					chk, err := accesscheck.NewChecker(append(base, accesscheck.WithAnytimeChunk(1))...)
					if err != nil {
						t.Fatal(err)
					}
					var cp *accesscheck.Checkpoint
					var res *accesscheck.Result
					rounds := 0
					prevCov := 0.0
					for {
						rounds++
						if rounds > 64 {
							t.Fatal("resume loop did not converge in 64 rounds")
						}
						res, cp, err = chk.CheckAnytime(context.Background(), sch, f, cp)
						if err != nil {
							t.Fatalf("round %d: %v", rounds, err)
						}
						if !res.Resumable {
							break
						}
						if res.Satisfiable {
							t.Fatalf("round %d: resumable partial claims satisfiable", rounds)
						}
						if !res.Truncated {
							t.Fatalf("round %d: resumable partial not marked Truncated", rounds)
						}
						if res.Coverage <= prevCov || res.Coverage >= 1 {
							t.Fatalf("round %d: coverage %v not in (%v, 1)", rounds, res.Coverage, prevCov)
						}
						prevCov = res.Coverage
						if cp == nil {
							t.Fatalf("round %d: resumable partial without a checkpoint", rounds)
						}
					}
					if rounds < 2 && !res.Satisfiable {
						// An unsat verdict needs the whole partition, so chunk
						// size 1 forces one round per shard; sat may settle in
						// round one when the witness lives in the first chunk.
						t.Fatalf("chunked unsat run settled in %d round(s); resume never exercised", rounds)
					}
					if res.Satisfiable != full.Satisfiable {
						t.Errorf("resumed verdict %v, uninterrupted %v", res.Satisfiable, full.Satisfiable)
					}
					if res.Coverage != 1 {
						t.Errorf("final Coverage = %v, want 1", res.Coverage)
					}
					if res.Truncated != full.Truncated {
						t.Errorf("resumed Truncated %v, uninterrupted %v", res.Truncated, full.Truncated)
					}
					if res.Satisfiable {
						ok, err := accesscheck.Holds(f, res.Witness)
						if err != nil || !ok {
							t.Errorf("resumed witness rejected by direct semantics: %v %v", ok, err)
						}
					}
				})
			}
		}
	}
}

// TestAnytimeShardedDeadlineMonotoneCoverage: under real deadline pressure
// (doubling budgets), coverage never regresses across rounds and the check
// eventually settles exactly, with the checkpoint carrying the frontier
// through zero-progress expiries.
func TestAnytimeShardedDeadlineMonotoneCoverage(t *testing.T) {
	sch, f, chk := anytimeFixture(t, parUnsatFormula, accesscheck.WithAnytimeChunk(1))
	var cp *accesscheck.Checkpoint
	var res *accesscheck.Result
	budget := 50 * time.Microsecond
	prevCov := 0.0
	for round := 0; ; round++ {
		if round > 200 {
			t.Fatal("did not settle in 200 rounds")
		}
		ctx, cancel := context.WithTimeout(context.Background(), budget)
		r, next, err := chk.CheckAnytime(ctx, sch, f, cp)
		cancel()
		budget *= 2
		if next != nil {
			cp = next
		}
		if err != nil {
			// Zero-progress expiry: nothing to assert but the warm checkpoint.
			if r != nil {
				t.Fatalf("round %d: result and error together: %+v / %v", round, r, err)
			}
			continue
		}
		res = r
		if res.Coverage < prevCov {
			t.Fatalf("round %d: coverage regressed %v -> %v", round, prevCov, res.Coverage)
		}
		prevCov = res.Coverage
		if !res.Resumable {
			break
		}
	}
	if res.Satisfiable || res.Coverage != 1 {
		t.Errorf("settled answer not exact unsat: %+v", res)
	}
	full, err := accesscheck.Check(context.Background(), sch, f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfiable != full.Satisfiable || res.Truncated != full.Truncated {
		t.Errorf("settled verdict/truncation %v/%v, uninterrupted %v/%v",
			res.Satisfiable, res.Truncated, full.Satisfiable, full.Truncated)
	}
}

// TestAnytimeCheckpointKeyMismatch: a checkpoint resumed against a
// different check is rejected loudly rather than silently poisoning the
// frontier.
func TestAnytimeCheckpointKeyMismatch(t *testing.T) {
	sch, f, chk := anytimeFixture(t, parUnsatFormula, accesscheck.WithAnytimeChunk(1))
	_, cp, err := chk.CheckAnytime(context.Background(), sch, f, nil)
	if err != nil || cp == nil {
		t.Fatalf("seed round: cp=%v err=%v", cp, err)
	}
	other, err := accesscheck.ParseFormula(parSatFormula)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := chk.CheckAnytime(context.Background(), sch, other, cp); err == nil ||
		!strings.Contains(err.Error(), "different check") {
		t.Errorf("foreign checkpoint accepted (err=%v)", err)
	}
}

// TestAnytimePathCapIsFinal: a path-capped round is a final truncated
// answer — not resumable, no checkpoint — because the cap's exact budget
// semantics do not compose across rounds.
func TestAnytimePathCapIsFinal(t *testing.T) {
	sch, f, chk := anytimeFixture(t, parUnsatFormula, accesscheck.WithMaxPaths(1))
	res, cp, err := chk.CheckAnytime(context.Background(), sch, f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.Resumable {
		t.Errorf("path-capped answer Truncated=%v Resumable=%v, want true/false", res.Truncated, res.Resumable)
	}
	if cp != nil {
		t.Error("path-capped answer returned a checkpoint to resume")
	}
}

// TestCheckpointStoreEviction: the store is a bounded LRU — overflow evicts
// the coldest entry, removal is explicit, and nil puts are ignored.
func TestCheckpointStoreEviction(t *testing.T) {
	sch, f, chk := anytimeFixture(t, parUnsatFormula, accesscheck.WithAnytimeChunk(1))
	_, cp, err := chk.CheckAnytime(context.Background(), sch, f, nil)
	if err != nil || cp == nil {
		t.Fatalf("seed round: cp=%v err=%v", cp, err)
	}
	st := accesscheck.NewCheckpointStore(2)
	st.Put(nil)
	if st.Len() != 0 {
		t.Fatalf("nil Put changed Len to %d", st.Len())
	}
	st.PutAs("a", cp)
	st.PutAs("b", cp)
	st.PutAs("c", cp)
	if st.Len() != 2 {
		t.Fatalf("Len = %d after overflowing capacity 2", st.Len())
	}
	if _, ok := st.Get("a"); ok {
		t.Error("coldest entry survived eviction")
	}
	if _, ok := st.Get("c"); !ok {
		t.Error("hottest entry evicted")
	}
	if s := st.Stats(); s.Evictions == 0 {
		t.Error("eviction not counted")
	}
	if !st.Remove("b") || st.Len() != 1 {
		t.Errorf("Remove(b) failed or Len = %d", st.Len())
	}
	if st.Remove("b") {
		t.Error("second Remove(b) reported success")
	}
}

// TestCheckpointStoreShardedConcurrentResume: several goroutines hammer the
// same stored checkpoint with identical chunked requests; the per-checkpoint
// round lock serializes them and every caller converges to the same exact
// verdict. Run under -race in CI.
func TestCheckpointStoreShardedConcurrentResume(t *testing.T) {
	sch, f, chk := anytimeFixture(t, parUnsatFormula, accesscheck.WithAnytimeChunk(1))
	st := accesscheck.NewCheckpointStore(8)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	finals := make(chan *accesscheck.Result, 8)
	key := chk.Fingerprint(sch, f)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				prev, _ := st.Get(key)
				res, cp, err := chk.CheckAnytime(context.Background(), sch, f, prev)
				if err != nil {
					errs <- err
					return
				}
				st.Put(cp)
				if !res.Resumable {
					finals <- res
					return
				}
			}
			errs <- context.DeadlineExceeded // placeholder: loop exhausted
		}()
	}
	wg.Wait()
	close(errs)
	close(finals)
	for err := range errs {
		t.Fatalf("concurrent resume: %v", err)
	}
	n := 0
	for res := range finals {
		n++
		if res.Satisfiable || res.Coverage != 1 {
			t.Errorf("converged answer not exact unsat: %+v", res)
		}
	}
	if n != 8 {
		t.Fatalf("%d of 8 goroutines converged", n)
	}
}
