package accesscheck

import (
	"fmt"
	"strconv"
	"strings"

	"accltl/internal/accltl"
	"accltl/internal/schema"
)

// MultiFlag is a repeatable string flag (a flag.Value), the shape the
// -rel/-method declarations take on the command line.
type MultiFlag []string

// String renders the accumulated values.
func (m *MultiFlag) String() string { return strings.Join(*m, ";") }

// Set appends one occurrence of the flag.
func (m *MultiFlag) Set(v string) error { *m = append(*m, v); return nil }

// ParseSchema builds a schema from textual declarations: relations as
// "Name:type,type,..." (types int, string, bool) and access methods as
// "Name:Relation:pos,pos,..." where an empty position list declares a free
// scan ("Name:Relation" and "Name:Relation:" are equivalent).
func ParseSchema(rels, methods []string) (*Schema, error) {
	if len(rels) == 0 {
		return nil, fmt.Errorf("accesscheck: ParseSchema: at least one relation declaration is required")
	}
	sch := schema.New()
	for _, decl := range rels {
		if _, err := AddRelation(sch, decl); err != nil {
			return nil, err
		}
	}
	for _, decl := range methods {
		if _, err := AddMethod(sch, decl); err != nil {
			return nil, err
		}
	}
	return sch, nil
}

// AddRelation parses a "Name:type,type,..." declaration and adds the
// relation to the schema.
func AddRelation(sch *Schema, decl string) (*Relation, error) {
	if sch == nil {
		return nil, fmt.Errorf("accesscheck: AddRelation: nil schema")
	}
	parts := strings.SplitN(decl, ":", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("accesscheck: bad relation declaration %q (want Name:type,...)", decl)
	}
	var types []schema.Type
	for _, t := range strings.Split(parts[1], ",") {
		switch strings.TrimSpace(t) {
		case "int":
			types = append(types, schema.TypeInt)
		case "string":
			types = append(types, schema.TypeString)
		case "bool":
			types = append(types, schema.TypeBool)
		default:
			return nil, fmt.Errorf("accesscheck: unknown type %q in relation declaration %q", t, decl)
		}
	}
	r, err := schema.NewRelation(parts[0], types...)
	if err != nil {
		return nil, err
	}
	if err := sch.AddRelation(r); err != nil {
		return nil, err
	}
	return r, nil
}

// AddMethod parses a "Name:Relation:pos,pos,..." declaration (empty
// position list = free scan) and adds the access method to the schema.
func AddMethod(sch *Schema, decl string) (*AccessMethod, error) {
	if sch == nil {
		return nil, fmt.Errorf("accesscheck: AddMethod: nil schema")
	}
	parts := strings.Split(decl, ":")
	if len(parts) != 2 && len(parts) != 3 {
		return nil, fmt.Errorf("accesscheck: bad method declaration %q (want Name:Relation:pos,...)", decl)
	}
	rel, ok := sch.Relation(parts[1])
	if !ok {
		return nil, fmt.Errorf("accesscheck: method %q names unknown relation %q", parts[0], parts[1])
	}
	var inputs []int
	if len(parts) == 3 && strings.TrimSpace(parts[2]) != "" {
		for _, p := range strings.Split(parts[2], ",") {
			n, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return nil, fmt.Errorf("accesscheck: bad position %q in method declaration %q", p, decl)
			}
			inputs = append(inputs, n)
		}
	}
	m, err := schema.NewAccessMethod(parts[0], rel, inputs...)
	if err != nil {
		return nil, err
	}
	if err := sch.AddMethod(m); err != nil {
		return nil, err
	}
	return m, nil
}

// ParseFormula reads an AccLTL formula from the textual syntax (see
// internal/accltl.Parse for the grammar):
//
//	(![exists n,p,s,ph. pre Mobile#(n,p,s,ph)])
//	  U [exists n,s,pc,h. bind AcM1(n) & pre Address(s,pc,n,h)]
func ParseFormula(src string) (Formula, error) { return accltl.Parse(src) }

// MustParseFormula is ParseFormula that panics on error, for compiled-in
// formulas.
func MustParseFormula(src string) Formula {
	f, err := ParseFormula(src)
	if err != nil {
		panic(err)
	}
	return f
}

// ParseSentence reads a bare first-order sentence (the [...] payload
// syntax of ParseFormula).
func ParseSentence(src string) (Sentence, error) { return accltl.ParseFO(src) }

// ParseEngine reads an engine name as printed by Engine.String — "auto",
// "x", "0-acc", "plus", "bounded", "automaton" — the form the server wire
// format and CLI flags use. The empty string means EngineAuto.
func ParseEngine(s string) (Engine, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return EngineAuto, nil
	case "x":
		return EngineX, nil
	case "0-acc", "zeroacc", "0acc":
		return EngineZeroAcc, nil
	case "plus":
		return EnginePlus, nil
	case "bounded":
		return EngineBounded, nil
	case "automaton":
		return EngineAutomaton, nil
	default:
		return EngineAuto, fmt.Errorf("accesscheck: unknown engine %q (want auto, x, 0-acc, plus, bounded or automaton)", s)
	}
}

// parseExactSpec interprets the CLI exact-response spec: "" restricts
// nothing, "*" means all methods, otherwise a comma-separated method list.
func parseExactSpec(spec string) (all bool, names []string, err error) {
	spec = strings.TrimSpace(spec)
	switch spec {
	case "":
		return false, nil, nil
	case "*":
		return true, nil, nil
	}
	for _, m := range strings.Split(spec, ",") {
		m = strings.TrimSpace(m)
		if m == "" {
			return false, nil, fmt.Errorf("accesscheck: empty method name in exact spec %q", spec)
		}
		names = append(names, m)
	}
	return false, names, nil
}
