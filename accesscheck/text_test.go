package accesscheck_test

import (
	"strings"
	"testing"

	"accltl/accesscheck"
)

func TestParseSchema(t *testing.T) {
	sch, err := accesscheck.ParseSchema(
		[]string{"Mobile#:string,string,string,int", "Address:string,string,string,int", "Flag:bool"},
		[]string{"AcM1:Mobile#:0", "AcM2:Address:0,1", "scanFlag:Flag", "scanFlag2:Flag:"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sch.Relation("Mobile#"); !ok {
		t.Error("Mobile# relation missing")
	}
	if got := len(sch.Methods()); got != 4 {
		t.Errorf("methods = %d, want 4", got)
	}
	for _, name := range []string{"scanFlag", "scanFlag2"} {
		m, ok := sch.Method(name)
		if !ok {
			t.Fatalf("method %s missing", name)
		}
		if len(m.InputTypes()) != 0 {
			t.Errorf("%s should be a free scan, has %d inputs", name, len(m.InputTypes()))
		}
	}
}

func TestParseSchemaErrors(t *testing.T) {
	cases := []struct {
		name    string
		rels    []string
		methods []string
	}{
		{"no relations", nil, nil},
		{"missing colon", []string{"Mobile"}, nil},
		{"unknown type", []string{"R:float"}, nil},
		{"method on unknown relation", []string{"R:int"}, []string{"m:S:0"}},
		{"bad position", []string{"R:int"}, []string{"m:R:x"}},
		{"too many colons", []string{"R:int"}, []string{"m:R:0:1"}},
	}
	for _, tc := range cases {
		if _, err := accesscheck.ParseSchema(tc.rels, tc.methods); err == nil {
			t.Errorf("%s: ParseSchema accepted %v / %v", tc.name, tc.rels, tc.methods)
		}
	}
}

func TestAddMethodReturnsHandle(t *testing.T) {
	sch, err := accesscheck.ParseSchema([]string{"R:int,int"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := accesscheck.AddMethod(sch, "probe:R:0,1")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "probe" || len(m.InputTypes()) != 2 {
		t.Errorf("handle wrong: %s with %d inputs", m.Name(), len(m.InputTypes()))
	}
}

func TestParseSentencePlainAtoms(t *testing.T) {
	s, err := accesscheck.ParseSentence(`exists x,y. R(x,y) & x != y`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.String(), "R(") {
		t.Errorf("plain atom lost: %s", s)
	}
	// Staged atoms still parse.
	if _, err := accesscheck.ParseSentence(`exists x. pre R(x)`); err != nil {
		t.Fatal(err)
	}
}

// TestParseFormulaRejectsPlainAtoms: the plain-atom query syntax is for
// ParseSentence only — in a solver-bound formula an unstaged atom is almost
// certainly a pre/post typo and would evaluate to a silent false, so the
// formula parser must fail fast on it.
func TestParseFormulaRejectsPlainAtoms(t *testing.T) {
	_, err := accesscheck.ParseFormula(`F [exists x. R(x)]`)
	if err == nil {
		t.Fatal("ParseFormula accepted an unstaged atom")
	}
	if !strings.Contains(err.Error(), "pre") {
		t.Errorf("error %q should hint at the stage keywords", err)
	}
}

func TestMustParseFormulaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseFormula did not panic on garbage")
		}
	}()
	accesscheck.MustParseFormula(`U U U`)
}

func TestMultiFlag(t *testing.T) {
	var m accesscheck.MultiFlag
	if err := m.Set("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("b"); err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m.String() != "a;b" {
		t.Errorf("MultiFlag = %v (%q)", m, m.String())
	}
}
