package accesscheck_test

import (
	"context"
	"runtime"
	"testing"

	"accltl/accesscheck"
)

var parRelations = []string{
	"Mobile#:string,string,string,int",
	"Address:string,string,string,int",
}

var parMethods = []string{
	"AcM1:Mobile#:0",
	"AcM2:Address:0,1",
}

const (
	parSatFormula   = `(![exists n,p,s,ph. pre Mobile#(n,p,s,ph)]) U [exists n. bind AcM1(n)]`
	parUnsatFormula = `[exists n,p,s,ph. pre Mobile#(n,p,s,ph)] & (![exists n,p,s,ph. pre Mobile#(n,p,s,ph)])`
)

func TestWithParallelismValidation(t *testing.T) {
	if _, err := accesscheck.NewChecker(accesscheck.WithParallelism(-1)); err == nil {
		t.Error("negative parallelism accepted")
	}
	for _, n := range []int{0, 1, 8} {
		if _, err := accesscheck.NewChecker(accesscheck.WithParallelism(n)); err != nil {
			t.Errorf("WithParallelism(%d) rejected: %v", n, err)
		}
	}
}

// TestCheckParallelMatchesSerialVerdicts: the facade-level slice of the
// engine equivalence — serial and parallel checkers agree on both verdicts,
// and parallel witnesses satisfy the formula under the direct semantics.
func TestCheckParallelMatchesSerialVerdicts(t *testing.T) {
	sch, err := accesscheck.ParseSchema(parRelations, parMethods)
	if err != nil {
		t.Fatal(err)
	}
	for name, src := range map[string]string{"sat": parSatFormula, "unsat": parUnsatFormula} {
		f, err := accesscheck.ParseFormula(src)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := accesscheck.Check(context.Background(), sch, f)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		for _, w := range []int{2, 4} {
			par, err := accesscheck.Check(context.Background(), sch, f, accesscheck.WithParallelism(w))
			if err != nil {
				t.Fatalf("%s w=%d: %v", name, w, err)
			}
			if par.Satisfiable != serial.Satisfiable && !par.Truncated && !serial.Truncated {
				t.Errorf("%s w=%d: verdict %v, serial %v", name, w, par.Satisfiable, serial.Satisfiable)
			}
			if par.Satisfiable {
				ok, err := accesscheck.Holds(f, par.Witness)
				if err != nil || !ok {
					t.Errorf("%s w=%d: witness rejected by direct semantics: %v %v", name, w, ok, err)
				}
			}
		}
	}
}

// TestFingerprintIgnoresParallelism pins the documented cache-identity
// rule: parallelism is an execution strategy, so checkers differing only in
// it must collapse onto one cache entry.
func TestFingerprintIgnoresParallelism(t *testing.T) {
	sch, err := accesscheck.ParseSchema(parRelations, parMethods)
	if err != nil {
		t.Fatal(err)
	}
	f, err := accesscheck.ParseFormula(parSatFormula)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := accesscheck.NewChecker()
	if err != nil {
		t.Fatal(err)
	}
	par, err := accesscheck.NewChecker(accesscheck.WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if serial.Fingerprint(sch, f) != par.Fingerprint(sch, f) {
		t.Error("Fingerprint differs across parallelism")
	}
	other, err := accesscheck.NewChecker(accesscheck.WithParallelism(8), accesscheck.WithGrounded())
	if err != nil {
		t.Fatal(err)
	}
	if par.Fingerprint(sch, f) == other.Fingerprint(sch, f) {
		t.Error("Fingerprint must still separate real option differences")
	}
}

// TestWithParallelismZeroMeansGOMAXPROCS: the auto value must produce a
// working checker whatever the machine's shape.
func TestWithParallelismZeroMeansGOMAXPROCS(t *testing.T) {
	sch, err := accesscheck.ParseSchema(parRelations, parMethods)
	if err != nil {
		t.Fatal(err)
	}
	f, err := accesscheck.ParseFormula(parSatFormula)
	if err != nil {
		t.Fatal(err)
	}
	res, err := accesscheck.Check(context.Background(), sch, f, accesscheck.WithParallelism(0))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfiable {
		t.Errorf("auto parallelism (GOMAXPROCS=%d) changed the verdict: %+v", runtime.GOMAXPROCS(0), res)
	}
}
