package cachetier

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// mapStore is an in-memory Store for exercising Tiered without disk.
type mapStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMapStore() *mapStore { return &mapStore{m: map[string][]byte{}} }

func (s *mapStore) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[key]
	return b, ok
}
func (s *mapStore) Put(key string, val []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = val
	return true
}
func (s *mapStore) Delete(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.m[key]
	delete(s.m, key)
	return ok
}
func (s *mapStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

func persistAll(key string, v string) ([]byte, bool) { return []byte(v), true }

func TestTieredWriteBehindOnEviction(t *testing.T) {
	back := newMapStore()
	tr := NewTiered(NewSharded[string](2, 1, nil), back, persistAll)
	for i := 0; i < 5; i++ {
		tr.Add(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	// Capacity 2, 5 distinct adds: the three evicted entries must have
	// been written behind; the two residents must not be on disk yet.
	if back.Len() != 3 {
		t.Fatalf("store holds %d entries after evictions, want 3", back.Len())
	}
	if b, ok := back.Get("k0"); !ok || string(b) != "v0" {
		t.Fatalf("evicted entry not written behind: %q %v", b, ok)
	}
	if _, ok := back.Get("k4"); ok {
		t.Fatal("resident entry reached the store before eviction/flush")
	}
	// The evicted value is reachable through Persisted, not Get.
	if _, ok := tr.Get("k0"); ok {
		t.Fatal("evicted entry still in the memory tier")
	}
	b, ok := tr.Persisted("k0")
	if !ok || string(b) != "v0" {
		t.Fatalf("Persisted(k0) = %q,%v", b, ok)
	}
	st := tr.Stats()
	if st.DiskHits != 1 {
		t.Fatalf("DiskHits = %d, want 1", st.DiskHits)
	}
}

func TestTieredFlushAndClose(t *testing.T) {
	back := newMapStore()
	tr := NewTiered(NewSharded[string](8, 2, nil), back, persistAll)
	tr.Add("a", "1")
	tr.Add("b", "2")
	if n := tr.Flush(); n != 2 {
		t.Fatalf("Flush wrote %d, want 2", n)
	}
	if back.Len() != 2 {
		t.Fatalf("store holds %d after flush, want 2", back.Len())
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTieredEncodeGate(t *testing.T) {
	back := newMapStore()
	// Only values not marked volatile persist — the disk tier's own
	// admission (exact-only in the server) rides on the encode gate.
	tr := NewTiered(NewSharded[string](1, 1, nil), back,
		func(key string, v string) ([]byte, bool) {
			if strings.HasPrefix(v, "volatile") {
				return nil, false
			}
			return []byte(v), true
		})
	tr.Add("keep", "durable")
	tr.Add("drop", "volatile thing") // evicts "keep" (capacity 1)
	tr.Flush()                       // flushes "drop", which the gate refuses
	if back.Len() != 1 {
		t.Fatalf("store holds %d, want only the durable entry", back.Len())
	}
	if _, ok := back.Get("keep"); !ok {
		t.Fatal("durable entry missing from the store")
	}
}

func TestTieredMemoryOnly(t *testing.T) {
	tr := NewTiered(NewSharded[string](2, 1, nil), nil, nil)
	tr.Add("a", "1")
	if _, ok := tr.Persisted("a"); ok {
		t.Fatal("memory-only tier claims a persisted entry")
	}
	if n := tr.Flush(); n != 0 {
		t.Fatalf("memory-only Flush wrote %d", n)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.DiskStats(); ok {
		t.Fatal("memory-only tier reports disk stats")
	}
}

func TestTieredRemoveBothTiers(t *testing.T) {
	back := newMapStore()
	tr := NewTiered(NewSharded[string](4, 1, nil), back, persistAll)
	tr.Add("k", "v")
	tr.Flush()
	if !tr.Remove("k") {
		t.Fatal("Remove reported nothing removed")
	}
	if _, ok := tr.Get("k"); ok {
		t.Fatal("memory entry survived Remove")
	}
	if _, ok := tr.Persisted("k"); ok {
		t.Fatal("persisted entry survived Remove")
	}
}
