// Package cachetier is the tiered cache subsystem under the check
// server: three coordinated layers that let a warm process answer
// cheaply, survive restarts, and scale past a single lock.
//
// The tiers, in probe order — negative cache, memory shards, disk:
//
//   - The negative cache (NegativeCache) is a Bloom filter set — a
//     classic filter per memo segment plus a small Bloofi-style root
//     that unions them — recording keys the dominance memos have seen.
//     A definite "never seen" answer lets a walker skip the memo's
//     mutex-protected critical section entirely. It is strictly an
//     accelerator: a filter positive only routes to the authoritative
//     memo, so false positives cost a lock acquisition, never a verdict.
//   - The memory tier (Sharded) splits the result LRU into N shards by
//     the same FNV+avalanche hash (Hash64) the fabric router rings
//     with, so cache residency aligns with coordinator routing and
//     shards contend on per-shard locks instead of one global mutex.
//   - The disk tier (DiskTier) is an append-only CRC-checked segment
//     log with an in-memory index, written behind from the memory tier
//     on eviction and at graceful shutdown, recovered by a boot scan,
//     and versioned by the fingerprint scheme so stale formats are
//     discarded loudly rather than served under wrong keys.
//
// Tiered composes the memory and disk layers behind one front;
// Admissible is the single exact-only admission rule every result
// store shares.
package cachetier

// Store is the byte-level persistence seam between cache tiers: the
// in-memory stores sit in front of anything that can hold key → bytes
// durably. DiskTier is the one implementation; tests substitute maps.
// Implementations must be safe for concurrent use.
type Store interface {
	// Get returns the stored value for key, if any.
	Get(key string) ([]byte, bool)
	// Put stores val under key, replacing any previous value. It
	// reports whether the store accepted the write (a full or failed
	// backing medium may refuse; callers treat refusal as a cache
	// miss, never an error).
	Put(key string, val []byte) bool
	// Delete removes key. It reports whether an entry was removed.
	Delete(key string) bool
	// Len is the number of live entries.
	Len() int
}

// Hash64 is the shared key-hash fabric of every tier: FNV-64a over the
// bytes, finished with a murmur-style avalanche so near-identical keys
// (URLs, fingerprints with a shared prefix) spread across the whole
// 64-bit space instead of clustering. The fabric router's consistent
// ring and the sharded memory tier both route with it, which is what
// aligns cache residency with coordinator routing — changing this
// function reshuffles both, so don't.
func Hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
