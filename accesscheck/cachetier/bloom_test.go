package cachetier

import "testing"

// splitmix64 generates deterministic, well-spread pseudo-random 64-bit
// values for filter keys without math/rand.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func TestNegativeCacheDefiniteAbsent(t *testing.T) {
	n := NewNegativeCache(1<<12, 4)
	if n.MayContain(0, 1, 2) {
		t.Fatal("fresh filter claims maybe-contains")
	}
	n.Insert(0, 1, 2)
	if !n.MayContain(0, 1, 2) {
		t.Fatal("inserted key reported definitely absent — unsound")
	}
	// Same key, different segment: the root says maybe but the other
	// segment's leaf has no bits, so the answer is still definite-absent.
	if n.MayContain(1, 1, 2) {
		t.Fatal("other segment's leaf should still filter the key")
	}
}

func TestNegativeCacheNeverForgets(t *testing.T) {
	// Soundness is "inserted ⇒ MayContain forever": insert many keys and
	// verify none ever reads back absent.
	n := NewNegativeCache(1<<14, 8)
	for i := uint64(0); i < 2000; i++ {
		h1, h2 := splitmix64(i), splitmix64(i^0xdead)
		n.Insert(i, h1, h2)
	}
	for i := uint64(0); i < 2000; i++ {
		h1, h2 := splitmix64(i), splitmix64(i^0xdead)
		if !n.MayContain(i, h1, h2) {
			t.Fatalf("key %d inserted but reported definitely absent", i)
		}
	}
}

// TestNegativeCacheFalsePositiveRate pins the advertised bound: at ~10
// bits per key the measured FP rate of a leaf stays under 5% (the
// theoretical rate for k=4 is ~1.2%), and the Stats estimate agrees to
// the same order.
func TestNegativeCacheFalsePositiveRate(t *testing.T) {
	const (
		segments = 64
		perSeg   = 100
		bound    = 0.05
	)
	n := NewNegativeCache(segments*1024, segments) // 1024 bits per leaf, ~10.2 bits/key
	var k uint64
	for seg := uint64(0); seg < segments; seg++ {
		for i := 0; i < perSeg; i++ {
			k++
			n.Insert(seg, splitmix64(k), splitmix64(k^0xbeef))
		}
	}
	probes, fps := 0, 0
	for i := uint64(0); i < 20000; i++ {
		k++
		probes++
		if n.MayContain(i%segments, splitmix64(k), splitmix64(k^0xbeef)) {
			fps++
		}
	}
	rate := float64(fps) / float64(probes)
	if rate > bound {
		t.Fatalf("false-positive rate %.4f exceeds configured bound %.2f", rate, bound)
	}
	st := n.Stats()
	if st.EstFP > 4*bound {
		t.Fatalf("Stats EstFP %.4f wildly off the %.2f bound", st.EstFP, bound)
	}
	if st.Inserts != segments*perSeg {
		t.Fatalf("Inserts = %d, want %d", st.Inserts, segments*perSeg)
	}
	if st.Tests == 0 || st.Definite == 0 {
		t.Fatalf("stats did not count tests/definites: %+v", st)
	}
}

func TestNegativeCacheSizing(t *testing.T) {
	// Tiny budgets round up to a well-formed filter instead of collapsing.
	n := NewNegativeCache(1, 3)
	if got := len(n.leaves); got != 4 {
		t.Fatalf("segments = %d, want next power of two 4", got)
	}
	if n.mask+1 < 64 {
		t.Fatalf("leaf bits = %d, want >= 64", n.mask+1)
	}
	// Segment indexes beyond the count wrap via the mask.
	n.Insert(1023, 7, 9)
	if !n.MayContain(1023, 7, 9) {
		t.Fatal("wrapped segment index lost the insert")
	}
}
