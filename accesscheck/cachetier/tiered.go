package cachetier

import (
	"io"
	"sync/atomic"

	"accltl/accesscheck/cache"
)

// Tiered fronts a sharded memory tier with an optional persistent
// Store behind it. The coupling is write-behind: values the memory
// tier evicts under capacity pressure — and the residents at graceful
// shutdown, via Flush — are encoded and appended to the store, so a
// restarted process finds everything a warm one ever held.
//
// Reads are deliberately asymmetric: Get consults only memory, and
// Persisted consults only the store, returning raw bytes. Disk hits
// are not promoted back into the memory tier — the server's values are
// encoded one way (result → wire response) and a disk hit is already a
// cheap terminal answer; promotion would need a decoder back to V and
// would double-store what the log can serve directly.
type Tiered[V any] struct {
	mem    *Sharded[V]
	back   Store
	encode func(key string, v V) ([]byte, bool)

	diskHits, diskMisses, flushed atomic.Uint64
}

// NewTiered wires mem to back via encode: encode turns a resident
// value into its persistent form, or reports false for values that
// must not persist (the disk tier's own admission — e.g. only exact
// check results are wire round-trippable). A nil back or encode means
// memory-only: Persisted always misses and Flush is a no-op.
func NewTiered[V any](mem *Sharded[V], back Store, encode func(key string, v V) ([]byte, bool)) *Tiered[V] {
	t := &Tiered[V]{mem: mem, back: back, encode: encode}
	if back != nil && encode != nil {
		mem.OnEvict(func(key string, v V) {
			if b, ok := encode(key, v); ok {
				back.Put(key, b)
			}
		})
	}
	return t
}

// Get serves the memory tier.
func (t *Tiered[V]) Get(key string) (V, bool) { return t.mem.Get(key) }

// Add admits into the memory tier; the value reaches the store only
// when evicted or flushed.
func (t *Tiered[V]) Add(key string, val V) bool { return t.mem.Add(key, val) }

// Remove drops key from both tiers.
func (t *Tiered[V]) Remove(key string) bool {
	ok := t.mem.Remove(key)
	if t.back != nil {
		if t.back.Delete(key) {
			ok = true
		}
	}
	return ok
}

// Persisted serves the persistent tier: the encoded bytes written
// behind for key, if any. Callers decode; see the asymmetry note on
// Tiered.
func (t *Tiered[V]) Persisted(key string) ([]byte, bool) {
	if t.back == nil {
		return nil, false
	}
	b, ok := t.back.Get(key)
	if ok {
		t.diskHits.Add(1)
	} else {
		t.diskMisses.Add(1)
	}
	return b, ok
}

// Flush writes every resident, persistable entry through to the store
// (graceful-shutdown write-behind) and reports how many it wrote.
func (t *Tiered[V]) Flush() int {
	if t.back == nil || t.encode == nil {
		return 0
	}
	n := 0
	t.mem.Each(func(key string, v V) {
		if b, ok := t.encode(key, v); ok && t.back.Put(key, b) {
			n++
		}
	})
	t.flushed.Add(uint64(n))
	return n
}

// Close flushes and, when the store is closeable (DiskTier is), closes
// it. Safe to call on a memory-only Tiered.
func (t *Tiered[V]) Close() error {
	t.Flush()
	if c, ok := t.back.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// Len is the resident memory-tier entry count.
func (t *Tiered[V]) Len() int { return t.mem.Len() }

// Shards is the memory tier's shard count.
func (t *Tiered[V]) Shards() int { return t.mem.Shards() }

// MemStats snapshots the memory tier's aggregated counters.
func (t *Tiered[V]) MemStats() cache.Stats { return t.mem.Stats() }

// TierStats is the Tiered-level view: disk probe outcomes and flushes.
type TierStats struct {
	DiskHits, DiskMisses uint64
	Flushed              uint64
}

// Stats snapshots the tier-coupling counters.
func (t *Tiered[V]) Stats() TierStats {
	return TierStats{
		DiskHits:   t.diskHits.Load(),
		DiskMisses: t.diskMisses.Load(),
		Flushed:    t.flushed.Load(),
	}
}

// DiskStats snapshots the persistent tier, when it is a DiskTier;
// ok reports whether there is one.
func (t *Tiered[V]) DiskStats() (DiskStats, bool) {
	dt, ok := t.back.(*DiskTier)
	if !ok {
		return DiskStats{}, false
	}
	return dt.Stats(), true
}
