package cachetier

import "accltl/accesscheck/cache"

// Sharded is the in-memory tier: the exact-only result LRU split into
// N independent cache.LRU shards routed by Hash64 of the key — the
// same hash the fabric router rings with, so the shard a fingerprint
// lands in here is stable under the routing that decides which worker
// sees it. Each shard has its own mutex and its own LRU list, so
// concurrent solves on different fingerprints stop contending on one
// global lock; within a shard, LRU semantics are exactly cache.LRU's.
//
// Capacity is divided evenly across shards (shards rounded up to a
// power of two for mask routing), so total capacity and total eviction
// pressure match a single LRU of the same size when keys spread evenly.
type Sharded[V any] struct {
	shards []*cache.LRU[V]
}

// NewSharded builds a sharded LRU of total capacity entries over
// shardCount shards (rounded up to a power of two, min 1), admitting
// values per admit exactly as cache.New does. The shard count is capped
// at the capacity: a tiny cache must not silently grow by ceil-division
// (a 1-entry cache split 8 ways would hold 8 and never evict).
func NewSharded[V any](capacity, shardCount int, admit func(V) bool) *Sharded[V] {
	if shardCount < 1 {
		shardCount = 1
	}
	n := 1
	for n < shardCount {
		n <<= 1
	}
	for n > 1 && n > capacity {
		n >>= 1
	}
	per := (capacity + n - 1) / n
	s := &Sharded[V]{shards: make([]*cache.LRU[V], n)}
	for i := range s.shards {
		s.shards[i] = cache.New(per, admit)
	}
	return s
}

func (s *Sharded[V]) shard(key string) *cache.LRU[V] {
	return s.shards[Hash64(key)&uint64(len(s.shards)-1)]
}

// Get returns the cached value for key, refreshing its recency within
// its shard.
func (s *Sharded[V]) Get(key string) (V, bool) { return s.shard(key).Get(key) }

// Add inserts key → val into its shard, subject to the admission rule.
func (s *Sharded[V]) Add(key string, val V) bool { return s.shard(key).Add(key, val) }

// Remove evicts key from its shard if present.
func (s *Sharded[V]) Remove(key string) bool { return s.shard(key).Remove(key) }

// Len is the total resident entry count across shards.
func (s *Sharded[V]) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Shards is the shard count.
func (s *Sharded[V]) Shards() int { return len(s.shards) }

// OnEvict installs fn as the capacity-eviction observer on every
// shard; the disk tier's write-behind hangs off it.
func (s *Sharded[V]) OnEvict(fn func(key string, val V)) {
	for _, sh := range s.shards {
		sh.OnEvict(fn)
	}
}

// Each visits every resident entry across all shards (snapshot per
// shard; fn runs outside the shard locks).
func (s *Sharded[V]) Each(fn func(key string, val V)) {
	for _, sh := range s.shards {
		sh.Each(fn)
	}
}

// Stats sums the per-shard counters: with evenly-spread keys the
// totals match a single LRU of the same aggregate capacity, which the
// tests pin.
func (s *Sharded[V]) Stats() cache.Stats {
	var t cache.Stats
	for _, sh := range s.shards {
		st := sh.Stats()
		t.Size += st.Size
		t.Capacity += st.Capacity
		t.Hits += st.Hits
		t.Misses += st.Misses
		t.Rejected += st.Rejected
		t.Evictions += st.Evictions
	}
	return t
}

// ShardStats exposes the per-shard breakdown (admin/metrics use).
func (s *Sharded[V]) ShardStats() []cache.Stats {
	out := make([]cache.Stats, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.Stats()
	}
	return out
}
