package cachetier

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// negHashes is the Bloom probe count k. Four probes from two 64-bit
// lanes via double hashing is the classic sweet spot: at ~10 bits per
// key the false-positive rate sits near 1%, and below ~5 bits per key
// the filter degrades gracefully toward always-maybe rather than ever
// lying in the dangerous direction.
const negHashes = 4

// NegativeCache is the Bloom layer of the tier: a filter per memo
// segment plus a Bloofi-style root that is the bitwise union of every
// leaf. Dominance memos consult it before their mutex-protected
// critical section: a definite "never seen" answers lock-free, a
// "maybe" falls through to the authoritative memo. The filter can
// therefore only cost time (one extra lock acquisition on a false
// positive), never correctness — bits are set, never cleared, and no
// verdict depends on them.
//
// The root serves whole-cache misses in one probe while the leaves
// keep per-segment density low; under heavy load the root saturates
// first and degrades to always-maybe, at which point the leaves are
// still the binding filter (a key passes only if its own segment's
// leaf also says maybe).
//
// All operations are lock-free and safe for concurrent use.
type NegativeCache struct {
	mask    uint64 // bit-index mask per filter (bits-1, bits a power of two)
	segMask uint64 // segment-index mask (len(leaves)-1)
	root    []atomic.Uint64
	leaves  [][]atomic.Uint64

	inserts  atomic.Uint64
	tests    atomic.Uint64
	definite atomic.Uint64 // tests answered "definitely never seen"
	rootWins atomic.Uint64 // definite answers settled at the root alone
}

// NegativeStats is a point-in-time view of a NegativeCache.
type NegativeStats struct {
	Bits     uint64  // total leaf bits across all segments
	SetBits  uint64  // leaf bits currently set
	Segments int     // leaf filter count
	Inserts  uint64  // keys inserted
	Tests    uint64  // MayContain calls
	Definite uint64  // tests answered "definitely never seen" (the fast-path wins)
	RootWins uint64  // definite answers settled by the root filter alone
	EstFP    float64 // estimated false-positive rate of the densest leaf
}

// NewNegativeCache builds a filter set of roughly totalBits leaf bits
// spread over segments leaves (both rounded up to powers of two; each
// leaf gets at least 64 bits, so tiny budgets round up rather than
// collapse). The segment of a key is chosen by the caller — memos pass
// their stripe index, so one leaf covers one memo stripe.
func NewNegativeCache(totalBits, segments int) *NegativeCache {
	if segments < 1 {
		segments = 1
	}
	segs := 1
	for segs < segments {
		segs <<= 1
	}
	perLeaf := totalBits / segs
	if perLeaf < 64 {
		perLeaf = 64
	}
	bitsPow := 64
	for bitsPow < perLeaf {
		bitsPow <<= 1
	}
	words := bitsPow / 64
	n := &NegativeCache{
		mask:    uint64(bitsPow - 1),
		segMask: uint64(segs - 1),
		root:    make([]atomic.Uint64, words),
		leaves:  make([][]atomic.Uint64, segs),
	}
	for i := range n.leaves {
		n.leaves[i] = make([]atomic.Uint64, words)
	}
	return n
}

// probes expands the two hash lanes into negHashes bit indexes by
// double hashing g_i = h1 + i·h2; h2 is forced odd so the probe walk
// cycles the whole (power-of-two-sized) bit space.
func (n *NegativeCache) probes(h1, h2 uint64) [negHashes]uint64 {
	h2 |= 1
	var p [negHashes]uint64
	for i := range p {
		p[i] = (h1 + uint64(i)*h2) & n.mask
	}
	return p
}

// MayContain reports whether (seg, h1, h2) may have been inserted.
// false is definitive — the key was never inserted into this cache;
// true only means "ask the authoritative store".
func (n *NegativeCache) MayContain(seg, h1, h2 uint64) bool {
	n.tests.Add(1)
	p := n.probes(h1, h2)
	for _, idx := range p {
		if n.root[idx>>6].Load()&(1<<(idx&63)) == 0 {
			n.definite.Add(1)
			n.rootWins.Add(1)
			return false
		}
	}
	leaf := n.leaves[seg&n.segMask]
	for _, idx := range p {
		if leaf[idx>>6].Load()&(1<<(idx&63)) == 0 {
			n.definite.Add(1)
			return false
		}
	}
	return true
}

// Insert records (seg, h1, h2) in the segment's leaf and in the root.
// The root is maintained as the running union of the leaves by setting
// the same bit positions in both, so leaf ⊆ root holds by construction.
func (n *NegativeCache) Insert(seg, h1, h2 uint64) {
	n.inserts.Add(1)
	leaf := n.leaves[seg&n.segMask]
	for _, idx := range n.probes(h1, h2) {
		orBit(&leaf[idx>>6], 1<<(idx&63))
		orBit(&n.root[idx>>6], 1<<(idx&63))
	}
}

// orBit sets bit in w; the CAS loop keeps it portable across toolchain
// versions that lack atomic Or.
func orBit(w *atomic.Uint64, bit uint64) {
	for {
		old := w.Load()
		if old&bit != 0 {
			return
		}
		if w.CompareAndSwap(old, old|bit) {
			return
		}
	}
}

// Stats counts the set bits (a scan, not free — metrics-path use only)
// and estimates the false-positive rate of the densest leaf as
// fill^k, the standard Bloom estimate with the fill ratio standing in
// for 1-e^{-kn/m}.
func (n *NegativeCache) Stats() NegativeStats {
	s := NegativeStats{
		Segments: len(n.leaves),
		Inserts:  n.inserts.Load(),
		Tests:    n.tests.Load(),
		Definite: n.definite.Load(),
		RootWins: n.rootWins.Load(),
	}
	perLeaf := n.mask + 1
	var worst float64
	for _, leaf := range n.leaves {
		var ones uint64
		for i := range leaf {
			ones += uint64(bits.OnesCount64(leaf[i].Load()))
		}
		s.SetBits += ones
		if fill := float64(ones) / float64(perLeaf); fill > worst {
			worst = fill
		}
	}
	s.Bits = perLeaf * uint64(len(n.leaves))
	s.EstFP = math.Pow(worst, negHashes)
	return s
}
