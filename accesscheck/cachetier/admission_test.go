package cachetier

import "testing"

func TestAdmissible(t *testing.T) {
	cases := []struct {
		name string
		v    Verdict
		want bool
	}{
		{"exact unsharded", Verdict{}, true},
		{"truncated", Verdict{Truncated: true}, false},
		{"witness settles regardless of coverage", Verdict{WitnessSettled: true, Covered: 1, Planned: 4}, true},
		{"witness settles even truncated-satisfiable merges", Verdict{WitnessSettled: true, Truncated: true}, true},
		{"full plan covered", Verdict{Covered: 4, Planned: 4}, true},
		{"partial cover", Verdict{Covered: 3, Planned: 4}, false},
		{"partial cover and truncated", Verdict{Truncated: true, Covered: 3, Planned: 4}, false},
		{"coverage not applicable (shard-keyed entry)", Verdict{Covered: 0, Planned: 0}, true},
		{"truncated shard-keyed entry", Verdict{Truncated: true, Planned: 0}, false},
	}
	for _, c := range cases {
		if got := Admissible(c.v); got != c.want {
			t.Errorf("%s: Admissible(%+v) = %v, want %v", c.name, c.v, got, c.want)
		}
	}
}
