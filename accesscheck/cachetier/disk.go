package cachetier

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Disk-tier persistence format (EMBANKS-style append-only segment log
// with an in-memory index):
//
//	header:  magic "ACCTIER1" | u32 format version | u32 len | scheme bytes
//	record:  u32 crc | u8 flag | u32 keyLen | u32 valLen | key | val
//
// all integers little-endian; crc is CRC-32 (IEEE) over everything
// after it (flag through val); flag 1 marks a tombstone (valLen 0).
// Recovery is a sequential scan rebuilding the last-write-wins index;
// the first corrupt or short record truncates the log there — loudly —
// so a torn tail from a crash can never resurrect as an answer. The
// scheme string versions the log by the *fingerprint scheme* of the
// keys: a log written under an older scheme is discarded loudly at
// open, because serving it under new keys would be silent corruption.
// There is no compaction: the log grows by overwrites and tombstones
// until discarded by a scheme bump (result records are small and
// exact-only admission keeps the write rate low; compaction is a
// follow-on, not a correctness need).
const (
	diskMagic         = "ACCTIER1"
	diskFormatVersion = 1
	diskLogName       = "segments.log"

	recHeaderLen = 4 + 1 + 4 + 4
	maxKeyLen    = 1 << 20
	maxValLen    = 1 << 26
)

// DiskConfig configures OpenDiskTier.
type DiskConfig struct {
	// Dir is the cache directory; it is created if absent and holds
	// one segments.log.
	Dir string
	// Scheme tags the log with the fingerprint scheme its keys were
	// minted under (accesscheck.FingerprintSchemeVersion). A log
	// carrying a different tag is discarded at open.
	Scheme string
}

// DiskStats is a point-in-time view of a DiskTier.
type DiskStats struct {
	Records int   // live index entries
	Bytes   int64 // log file size, header included
	Hits    uint64
	Misses  uint64
	Writes  uint64
	Deletes uint64
	// CorruptTails counts boot scans that found and truncated a
	// corrupt tail; SchemeDiscards counts whole logs discarded for a
	// stale scheme or format.
	CorruptTails   uint64
	SchemeDiscards uint64
}

type diskLoc struct {
	off int64 // offset of the value bytes
	n   int   // value length
}

// DiskTier is the persistent Store: an append-only CRC-checked log
// plus an in-memory key → location index rebuilt by a boot scan.
// Writes append under one mutex; reads ReadAt committed offsets
// outside it. A write error degrades the tier to refusing that Put
// (the caller sees a cache miss later) rather than failing the check.
type DiskTier struct {
	mu    sync.Mutex
	f     *os.File
	size  int64
	index map[string]diskLoc

	hits, misses, writes, deletes atomic.Uint64
	corruptTails, schemeDiscards  uint64 // set under mu at open/scan time
}

// OpenDiskTier opens (creating if needed) the segment log in cfg.Dir
// and recovers its index. A log with a mismatched magic, format
// version, or fingerprint scheme is discarded — loudly, via the
// standard logger — and reinitialized empty.
func OpenDiskTier(cfg DiskConfig) (*DiskTier, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("cachetier: disk tier needs a directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("cachetier: %w", err)
	}
	path := filepath.Join(cfg.Dir, diskLogName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cachetier: %w", err)
	}
	t := &DiskTier{f: f, index: make(map[string]diskLoc)}
	if err := t.recover(cfg.Scheme, path); err != nil {
		f.Close()
		return nil, err
	}
	return t, nil
}

func headerBytes(scheme string) []byte {
	h := make([]byte, 0, len(diskMagic)+8+len(scheme))
	h = append(h, diskMagic...)
	h = binary.LittleEndian.AppendUint32(h, diskFormatVersion)
	h = binary.LittleEndian.AppendUint32(h, uint32(len(scheme)))
	h = append(h, scheme...)
	return h
}

// recover validates the header and scans the records into the index,
// truncating at the first corruption. Called once from OpenDiskTier,
// before the tier is shared, but takes the lock anyway for form.
func (t *DiskTier) recover(scheme, path string) error {
	t.mu.Lock()
	defer t.mu.Unlock()

	st, err := t.f.Stat()
	if err != nil {
		return fmt.Errorf("cachetier: %w", err)
	}
	hdr := headerBytes(scheme)

	reinit := func(why string) error {
		if st.Size() > 0 {
			log.Printf("cachetier: DISCARDING disk tier %s (%d bytes): %s", path, st.Size(), why)
			t.schemeDiscards++
		}
		if err := t.f.Truncate(0); err != nil {
			return fmt.Errorf("cachetier: %w", err)
		}
		if _, err := t.f.WriteAt(hdr, 0); err != nil {
			return fmt.Errorf("cachetier: %w", err)
		}
		t.size = int64(len(hdr))
		return nil
	}

	if st.Size() < int64(len(hdr)) {
		return reinit("missing or short header")
	}
	got := make([]byte, len(hdr))
	if _, err := t.f.ReadAt(got, 0); err != nil {
		return fmt.Errorf("cachetier: %w", err)
	}
	if string(got) != string(hdr) {
		return reinit(fmt.Sprintf("header mismatch (want scheme %q, format v%d)", scheme, diskFormatVersion))
	}

	// Header checks out: scan records.
	off := int64(len(hdr))
	end := st.Size()
	truncateAt := int64(-1)
	var why string
	buf := make([]byte, recHeaderLen)
	for off < end {
		if _, err := t.f.ReadAt(buf, off); err != nil {
			truncateAt, why = off, "short record header"
			break
		}
		crc := binary.LittleEndian.Uint32(buf[0:4])
		flag := buf[4]
		klen := int(binary.LittleEndian.Uint32(buf[5:9]))
		vlen := int(binary.LittleEndian.Uint32(buf[9:13]))
		if flag > 1 || klen == 0 || klen > maxKeyLen || vlen > maxValLen ||
			off+int64(recHeaderLen)+int64(klen)+int64(vlen) > end {
			truncateAt, why = off, "implausible record header"
			break
		}
		body := make([]byte, 1+8+klen+vlen)
		copy(body, buf[4:recHeaderLen])
		if _, err := t.f.ReadAt(body[9:], off+recHeaderLen); err != nil {
			truncateAt, why = off, "short record body"
			break
		}
		if crc32.ChecksumIEEE(body) != crc {
			truncateAt, why = off, "CRC mismatch"
			break
		}
		key := string(body[9 : 9+klen])
		if flag == 1 {
			delete(t.index, key)
		} else {
			t.index[key] = diskLoc{off: off + recHeaderLen + int64(klen), n: vlen}
		}
		off += int64(recHeaderLen) + int64(klen) + int64(vlen)
	}
	if truncateAt >= 0 {
		log.Printf("cachetier: disk tier %s: %s at offset %d — truncating %d byte(s) of corrupt tail",
			path, why, truncateAt, end-truncateAt)
		t.corruptTails++
		if err := t.f.Truncate(truncateAt); err != nil {
			return fmt.Errorf("cachetier: %w", err)
		}
		off = truncateAt
	}
	t.size = off
	return nil
}

// Get returns the persisted value for key. The read happens at a
// committed offset outside the lock; appends never move committed
// bytes, so the racing window is benign.
func (t *DiskTier) Get(key string) ([]byte, bool) {
	t.mu.Lock()
	loc, ok := t.index[key]
	t.mu.Unlock()
	if !ok {
		t.misses.Add(1)
		return nil, false
	}
	val := make([]byte, loc.n)
	if _, err := t.f.ReadAt(val, loc.off); err != nil {
		t.misses.Add(1)
		return nil, false
	}
	t.hits.Add(1)
	return val, true
}

// Put appends a record for key and points the index at it (last write
// wins). A failed append logs once and reports false — the tier
// degrades to a miss, it never fails the caller.
func (t *DiskTier) Put(key string, val []byte) bool {
	if key == "" || len(key) > maxKeyLen || len(val) > maxValLen {
		return false
	}
	rec := t.encode(0, key, val)
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, err := t.f.WriteAt(rec, t.size); err != nil {
		log.Printf("cachetier: disk tier write failed, entry dropped: %v", err)
		return false
	}
	t.index[key] = diskLoc{off: t.size + recHeaderLen + int64(len(key)), n: len(val)}
	t.size += int64(len(rec))
	t.writes.Add(1)
	return true
}

// Delete appends a tombstone and drops the index entry.
func (t *DiskTier) Delete(key string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.index[key]; !ok {
		return false
	}
	rec := t.encode(1, key, nil)
	if _, err := t.f.WriteAt(rec, t.size); err != nil {
		log.Printf("cachetier: disk tier tombstone write failed: %v", err)
		return false
	}
	delete(t.index, key)
	t.size += int64(len(rec))
	t.deletes.Add(1)
	return true
}

func (t *DiskTier) encode(flag byte, key string, val []byte) []byte {
	rec := make([]byte, recHeaderLen+len(key)+len(val))
	rec[4] = flag
	binary.LittleEndian.PutUint32(rec[5:9], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[9:13], uint32(len(val)))
	copy(rec[recHeaderLen:], key)
	copy(rec[recHeaderLen+len(key):], val)
	binary.LittleEndian.PutUint32(rec[0:4], crc32.ChecksumIEEE(rec[4:]))
	return rec
}

// Len is the live (indexed) record count.
func (t *DiskTier) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.index)
}

// Sync flushes the log to stable storage.
func (t *DiskTier) Sync() error { return t.f.Sync() }

// Close syncs and closes the log.
func (t *DiskTier) Close() error {
	if err := t.f.Sync(); err != nil {
		t.f.Close()
		return err
	}
	return t.f.Close()
}

// Stats snapshots the tier counters.
func (t *DiskTier) Stats() DiskStats {
	t.mu.Lock()
	records, size := len(t.index), t.size
	corrupt, discards := t.corruptTails, t.schemeDiscards
	t.mu.Unlock()
	return DiskStats{
		Records:        records,
		Bytes:          size,
		Hits:           t.hits.Load(),
		Misses:         t.misses.Load(),
		Writes:         t.writes.Load(),
		Deletes:        t.deletes.Load(),
		CorruptTails:   corrupt,
		SchemeDiscards: discards,
	}
}

var _ Store = (*DiskTier)(nil)
var _ io.Closer = (*DiskTier)(nil)
