package cachetier

import (
	"os"
	"path/filepath"
	"testing"
)

func openTier(t *testing.T, dir, scheme string) *DiskTier {
	t.Helper()
	dt, err := OpenDiskTier(DiskConfig{Dir: dir, Scheme: scheme})
	if err != nil {
		t.Fatal(err)
	}
	return dt
}

func TestDiskTierRoundTrip(t *testing.T) {
	dir := t.TempDir()
	dt := openTier(t, dir, "fp-v1")
	pairs := map[string]string{
		"alpha": "first value",
		"beta":  "second",
		"gamma": "",
	}
	for k, v := range pairs {
		if !dt.Put(k, []byte(v)) {
			t.Fatalf("Put(%q) refused", k)
		}
	}
	if !dt.Put("alpha", []byte("rewritten")) {
		t.Fatal("overwrite refused")
	}
	pairs["alpha"] = "rewritten"
	if !dt.Delete("beta") {
		t.Fatal("Delete refused")
	}
	delete(pairs, "beta")
	check := func(dt *DiskTier, when string) {
		t.Helper()
		if dt.Len() != len(pairs) {
			t.Fatalf("%s: Len = %d, want %d", when, dt.Len(), len(pairs))
		}
		for k, v := range pairs {
			got, ok := dt.Get(k)
			if !ok || string(got) != v {
				t.Fatalf("%s: Get(%q) = %q,%v want %q", when, k, got, ok, v)
			}
		}
		if _, ok := dt.Get("beta"); ok {
			t.Fatalf("%s: tombstoned key resurrected", when)
		}
	}
	check(dt, "live")
	if err := dt.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery: a fresh open rebuilds last-write-wins index from the log.
	dt2 := openTier(t, dir, "fp-v1")
	defer dt2.Close()
	check(dt2, "recovered")
	if st := dt2.Stats(); st.CorruptTails != 0 || st.SchemeDiscards != 0 {
		t.Fatalf("clean recovery flagged damage: %+v", st)
	}
}

func TestDiskTierCorruptTailTruncated(t *testing.T) {
	dir := t.TempDir()
	dt := openTier(t, dir, "fp-v1")
	dt.Put("keep", []byte("survives"))
	st := dt.Stats()
	goodEnd := st.Bytes
	dt.Put("torn", []byte("this record gets a flipped byte"))
	dt.Close()

	// Flip one byte inside the last record's value.
	path := filepath.Join(dir, diskLogName)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, goodEnd+recHeaderLen+int64(len("torn"))+3); err != nil {
		t.Fatal(err)
	}
	f.Close()

	dt2 := openTier(t, dir, "fp-v1")
	defer dt2.Close()
	if _, ok := dt2.Get("keep"); !ok {
		t.Fatal("record before the corrupt tail was lost")
	}
	if _, ok := dt2.Get("torn"); ok {
		t.Fatal("corrupt record served")
	}
	st2 := dt2.Stats()
	if st2.CorruptTails != 1 {
		t.Fatalf("CorruptTails = %d, want 1", st2.CorruptTails)
	}
	if st2.Bytes != goodEnd {
		t.Fatalf("log not truncated at the corruption: %d bytes, want %d", st2.Bytes, goodEnd)
	}
	// The truncated tail is writable again.
	if !dt2.Put("fresh", []byte("post-recovery")) {
		t.Fatal("post-recovery Put refused")
	}
}

func TestDiskTierSchemeMismatchDiscards(t *testing.T) {
	dir := t.TempDir()
	dt := openTier(t, dir, "fp-v1")
	dt.Put("old", []byte("minted under fp-v1"))
	dt.Close()

	dt2 := openTier(t, dir, "fp-v2")
	defer dt2.Close()
	if _, ok := dt2.Get("old"); ok {
		t.Fatal("entry from a stale fingerprint scheme served — silent corruption")
	}
	st := dt2.Stats()
	if st.SchemeDiscards != 1 {
		t.Fatalf("SchemeDiscards = %d, want 1", st.SchemeDiscards)
	}
	if st.Records != 0 {
		t.Fatalf("stale log not emptied: %d records", st.Records)
	}
	dt2.Put("new", []byte("fp-v2 native"))
	if got, ok := dt2.Get("new"); !ok || string(got) != "fp-v2 native" {
		t.Fatal("reinitialized log not writable")
	}
}

func TestDiskTierStats(t *testing.T) {
	dt := openTier(t, t.TempDir(), "s")
	defer dt.Close()
	dt.Put("a", []byte("x"))
	dt.Get("a")
	dt.Get("missing")
	st := dt.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Records != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Bytes <= int64(len(headerBytes("s"))) {
		t.Fatalf("Bytes = %d does not cover the record", st.Bytes)
	}
}
