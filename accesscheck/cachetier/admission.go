package cachetier

// Verdict is the admission-relevant shape of a finished check, however
// it was produced: a local solve (server result cache), a shard-keyed
// partial solve (worker shard path), or a coordinator-assembled merge
// (merged-result cache). The three stores used to restate the
// exact-only rule independently; they now all ask Admissible so the
// rule cannot drift.
type Verdict struct {
	// WitnessSettled marks a satisfiable verdict carried by a concrete
	// verified witness: such a verdict is exact regardless of how much
	// of the shard plan completed, because one witness settles an
	// existential check.
	WitnessSettled bool
	// Truncated marks a verdict relative to a budget or cap (paths,
	// responses, time). Budget-relative verdicts must never be served
	// to a later caller whose budget may differ.
	Truncated bool
	// Covered and Planned describe shard coverage *relative to the
	// cache key's scope*: a coordinator's shard-less key spans the
	// whole plan, so Covered must reach Planned; a worker's shard-keyed
	// entry spans only its own slices, which its Truncated flag already
	// accounts for — such callers leave both zero. Planned == 0 means
	// coverage does not apply to this key.
	Covered, Planned int
}

// Admissible is the one exact-only admission rule of every result
// store: a verdict enters a cache only if a later identical request
// could have recomputed it bit-for-bit — settled by a witness, or
// untruncated with its key's whole scope covered.
func Admissible(v Verdict) bool {
	if v.WitnessSettled {
		return true
	}
	if v.Truncated {
		return false
	}
	return v.Planned == 0 || v.Covered == v.Planned
}
