package cachetier

import (
	"fmt"
	"testing"

	"accltl/accesscheck/cache"
)

// shardKeys deterministically buckets generated keys by the shard each
// would land in, returning per-shard key lists of the wanted length.
func shardKeys(t *testing.T, shards, perShard int) [][]string {
	t.Helper()
	out := make([][]string, shards)
	for i := 0; len(out[0]) < perShard || shorter(out, perShard); i++ {
		if i > 1000000 {
			t.Fatal("could not bucket enough keys")
		}
		k := fmt.Sprintf("fp-%d", i)
		s := int(Hash64(k) & uint64(shards-1))
		if len(out[s]) < perShard {
			out[s] = append(out[s], k)
		}
	}
	return out
}

func shorter(b [][]string, want int) bool {
	for _, l := range b {
		if len(l) < want {
			return true
		}
	}
	return false
}

// TestShardedEvictionSumMatchesSingleLock drives a sharded LRU and a
// single-lock LRU of the same total capacity with a key set spread
// evenly across shards: the sharded tier's summed eviction counter must
// equal the single-lock cache's, and total occupancy must match.
func TestShardedEvictionSumMatchesSingleLock(t *testing.T) {
	const (
		shards   = 4
		perShard = 3 // capacity per shard; one extra key each forces exactly one eviction
	)
	capacity := shards * perShard
	buckets := shardKeys(t, shards, perShard+1)

	sh := NewSharded[int](capacity, shards, nil)
	single := cache.New[int](capacity, nil)
	adds := 0
	for _, keys := range buckets {
		for _, k := range keys {
			sh.Add(k, 1)
			single.Add(k, 1)
			adds++
		}
	}
	ss, gs := sh.Stats(), single.Stats()
	if ss.Evictions != gs.Evictions {
		t.Fatalf("sharded evictions %d != single-lock evictions %d", ss.Evictions, gs.Evictions)
	}
	if want := uint64(adds - capacity); ss.Evictions != want {
		t.Fatalf("evictions = %d, want %d", ss.Evictions, want)
	}
	if sh.Len() != single.Len() || sh.Len() != capacity {
		t.Fatalf("occupancy: sharded %d, single %d, want %d", sh.Len(), single.Len(), capacity)
	}
	if ss.Capacity != capacity {
		t.Fatalf("summed capacity %d, want %d", ss.Capacity, capacity)
	}
}

// TestShardedPerShardLRUSemantics pins recency within one shard: a Get
// refreshes an entry so the next eviction in that shard displaces the
// colder one.
func TestShardedPerShardLRUSemantics(t *testing.T) {
	buckets := shardKeys(t, 2, 3)
	keys := buckets[0] // three keys that all land in shard 0 (capacity 2)
	s := NewSharded[string](4, 2, nil)
	s.Add(keys[0], "a")
	s.Add(keys[1], "b")
	if _, ok := s.Get(keys[0]); !ok {
		t.Fatal("warm entry missing")
	}
	s.Add(keys[2], "c") // shard 0 over capacity: keys[1] is now coldest
	if _, ok := s.Get(keys[1]); ok {
		t.Fatal("coldest entry survived eviction")
	}
	for _, k := range []string{keys[0], keys[2]} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("entry %q wrongly evicted", k)
		}
	}
}

func TestShardedAdmissionAndRemove(t *testing.T) {
	s := NewSharded[int](8, 4, func(v int) bool { return v >= 0 })
	if s.Add("k", -1) {
		t.Fatal("admission rule ignored")
	}
	if st := s.Stats(); st.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", st.Rejected)
	}
	s.Add("k", 7)
	if !s.Remove("k") || s.Len() != 0 {
		t.Fatal("Remove failed")
	}
}

func TestShardedEachAndOnEvict(t *testing.T) {
	s := NewSharded[int](4, 4, nil)
	evicted := map[string]int{}
	s.OnEvict(func(k string, v int) { evicted[k] = v })
	for i := 0; i < 12; i++ {
		s.Add(fmt.Sprintf("k%d", i), i)
	}
	seen := map[string]int{}
	s.Each(func(k string, v int) { seen[k] = v })
	if len(seen) != s.Len() {
		t.Fatalf("Each visited %d entries, Len says %d", len(seen), s.Len())
	}
	if want := 12 - s.Len(); len(evicted) != want {
		t.Fatalf("OnEvict observed %d evictions, want %d", len(evicted), want)
	}
	for k := range evicted {
		if _, resident := seen[k]; resident {
			t.Fatalf("key %q both evicted and resident", k)
		}
	}
}

// TestShardedTinyCapacityClampsShards: a cache smaller than its shard
// count must not silently grow by per-shard ceil-division — a 1-entry
// cache split 8 ways would hold 8 entries and never evict.
func TestShardedTinyCapacityClampsShards(t *testing.T) {
	for _, tc := range []struct {
		capacity, shards, wantShards, wantCap int
	}{
		{1, 8, 1, 1},
		{2, 8, 2, 2},
		{3, 8, 2, 4}, // odd capacity still rounds per-shard up
		{8, 8, 8, 8},
		{16, 4, 4, 16},
	} {
		s := NewSharded[int](tc.capacity, tc.shards, nil)
		if s.Shards() != tc.wantShards {
			t.Errorf("NewSharded(%d, %d): %d shards, want %d", tc.capacity, tc.shards, s.Shards(), tc.wantShards)
		}
		if got := s.Stats().Capacity; got != tc.wantCap {
			t.Errorf("NewSharded(%d, %d): capacity %d, want %d", tc.capacity, tc.shards, got, tc.wantCap)
		}
	}
}
