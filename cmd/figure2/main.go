// figure2 regenerates Figure 2 of the paper: the inclusion diagram between
// the language classes. For each edge it demonstrates the inclusion
// constructively (translating or compiling a witness specification from the
// smaller class into the larger and checking the verdicts agree), and for
// the key strictness claims it exhibits a separating property.
package main

import (
	"context"
	"fmt"
	"log"

	"accltl/accesscheck"
	"accltl/internal/autom"
	"accltl/internal/workload"
)

func main() {
	ctx := context.Background()
	phone := workload.MustPhone()
	sch := phone.Schema

	fmt.Println("Figure 2: inclusions between language classes.")
	fmt.Println()
	fmt.Println("  AccLTL(X)(FO∃+,≠_0-Acc) ⊂ AccLTL(FO∃+,≠_0-Acc)")
	fmt.Println("  AccLTL(FO∃+_0-Acc)      ⊂ AccLTL(FO∃+,≠_0-Acc)")
	fmt.Println("  AccLTL(FO∃+_0-Acc)      ⊂ AccLTL+")
	fmt.Println("  AccLTL+                 ⊂ AccLTL(FO∃+_Acc)")
	fmt.Println("  AccLTL+                 ⊂ A-automata (Lemma 4.5)")
	fmt.Println()

	// Edge 1: X-fragment ⊆ 0-Acc fragment — every X-only formula runs
	// through both solvers with the same verdict.
	xFormula := accesscheck.Next(accesscheck.Atom(phone.MobileNonEmptyPost()))
	xRes, err := accesscheck.Check(ctx, sch, xFormula,
		accesscheck.WithEngine(accesscheck.EngineX))
	check(err)
	zRes, err := accesscheck.Check(ctx, sch, xFormula,
		accesscheck.WithEngine(accesscheck.EngineZeroAcc))
	check(err)
	fmt.Printf("[X ⊆ 0-Acc]    %s: X-solver=%v 0-Acc-solver=%v\n", xFormula, xRes.Satisfiable, zRes.Satisfiable)
	if xRes.Satisfiable != zRes.Satisfiable {
		log.Fatal("inclusion broken")
	}

	// Strictness: U is not expressible with X alone — the access-order
	// spec needs U and is rejected by the X solver.
	accOr := phone.AccessOrderRestriction()
	if _, err := accesscheck.Check(ctx, sch, accOr,
		accesscheck.WithEngine(accesscheck.EngineX)); err == nil {
		log.Fatal("U formula accepted by X solver")
	}
	fmt.Printf("[X ⊂ 0-Acc]    separator: %s (uses U; rejected by the X fragment)\n", accOr)

	// Edge 2: 0-Acc ⊆ AccLTL+ — the Section 6 rewriting: 0-ary IsBind
	// predicates become existentially quantified n-ary ones (negated 0-ary
	// IsBind rewrites through the disjunction over the other methods).
	zero := accesscheck.MustParseFormula(`F [bind AcM1]`)
	lifted := accesscheck.MustParseFormula(`F [exists x. bind AcM1(x)]`)
	zr, err := accesscheck.Check(ctx, sch, zero,
		accesscheck.WithEngine(accesscheck.EngineZeroAcc))
	check(err)
	pr, err := accesscheck.Check(ctx, sch, lifted,
		accesscheck.WithEngine(accesscheck.EnginePlus))
	check(err)
	fmt.Printf("[0-Acc ⊆ +]    0-ary IsBind lifted to ∃-quantified: %v / %v\n", zr.Satisfiable, pr.Satisfiable)
	if zr.Satisfiable != pr.Satisfiable {
		log.Fatal("inclusion broken")
	}

	// Strictness: dataflow restrictions need n-ary bindings (Table 1 DF
	// column): the DF spec is outside 0-Acc.
	df := phone.DataflowRestriction()
	if accesscheck.Classify(df).ZeroAcc {
		log.Fatal("DF spec wrongly classified 0-Acc")
	}
	fmt.Printf("[0-Acc ⊂ +]    separator: dataflow spec %s\n", df)

	// Edge 3: AccLTL+ ⊆ AccLTL(FO∃+_Acc) — syntactic (binding-positive is
	// a restriction); the full class additionally admits negated IsBind.
	negBind := accesscheck.MustParseFormula(`![exists x. bind AcM1(x)]`)
	info := accesscheck.Classify(negBind)
	if info.BindingPositive {
		log.Fatal("negated IsBind classified binding-positive")
	}
	frag, _ := info.Fragment()
	fmt.Printf("[+ ⊂ Full]     separator: %s (fragment %s)\n", negBind, frag)

	// Edge 4: AccLTL+ ⊆ A-automata — Lemma 4.5 compilation, verdict
	// agreement between the direct solver and automaton emptiness.
	intro := phone.IntroFormula()
	ar, err := accesscheck.Check(ctx, sch, intro,
		accesscheck.WithEngine(accesscheck.EngineAutomaton))
	check(err)
	dr, err := accesscheck.Check(ctx, sch, intro,
		accesscheck.WithEngine(accesscheck.EnginePlus))
	check(err)
	fmt.Printf("[+ ⊆ A-autom.] intro formula compiled to %d states: nonempty=%v direct=%v\n",
		ar.AutomatonStates, ar.Satisfiable, dr.Satisfiable)
	if ar.Satisfiable != dr.Satisfiable {
		log.Fatal("compilation inclusion broken")
	}

	// Strictness: A-automata express parity of path length, which no
	// first-order AccLTL formula can (Section 6). Exhibit the automaton —
	// built directly against the automaton layer, since parity is exactly
	// what the AccLTL facade cannot say.
	parity := autom.New(sch, 2, 0)
	parity.MustAddTransition(0, accesscheck.TrueSentence(), 1)
	parity.MustAddTransition(1, accesscheck.TrueSentence(), 0)
	parity.SetAccepting(1)
	res, err := parity.IsEmpty(autom.EmptinessOptions{Context: ctx, MaxDepth: 3})
	check(err)
	fmt.Printf("[+ ⊂ A-autom.] separator: odd-length parity automaton (nonempty=%v, witness length %d)\n",
		!res.Empty, res.Witness.Len())
	if res.Empty || res.Witness.Len()%2 != 1 {
		log.Fatal("parity automaton misbehaved")
	}

	fmt.Println("\nall inclusion edges verified")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
