// acclcheck is the paper-surface CLI of the accesscheck facade. The -task
// flag selects the decision problem; the default is the original
// satisfiability check: declare a schema with access methods, give an
// AccLTL formula in the textual syntax of accesscheck.ParseFormula, and
// the tool classifies the formula into its Table 1 fragment, dispatches
// the matching solver, and prints the verdict with a witness path.
//
// Example (the introduction's query on the phone-directory schema):
//
//	acclcheck \
//	  -rel 'Mobile#:string,string,string,int' \
//	  -rel 'Address:string,string,string,int' \
//	  -method 'AcM1:Mobile#:0' \
//	  -method 'AcM2:Address:0,1' \
//	  -f '(![exists n,p,s,ph. pre Mobile#(n,p,s,ph)]) U [exists n,s,pc,h. bind AcM1(n) & pre Address(s,pc,n,h)]'
//
// The other tasks:
//
//	-task containment  -mode ucq      -q1 ... -q2 ...
//	                   -mode datalog  -rule 'P(x) :- E(x,y)' ... -goal P -q2 ... [-depth n]
//	                   -mode access   -rel ... -method ... -q1 ... -q2 ... [-seed 'R(v,...)'] [-depth n]
//	-task relevance    -rel ... -method ... -q ...
//	                   probe mode:            -probe M -bind v,... [-grounded] [-depth n]
//	                   accessible-part mode:  -hidden 'R(v,...)' ... [-seed 'R(v,...)' ...]
//	-task chase        -arity R:2 ... [-fd 'R:0->1' ...] [-id 'R[0]<=S[1]' ...] -sigma 'R:0->1' [-steps n]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"accltl/accesscheck"
)

func main() {
	var rels, methods, rules, seedFacts, hiddenFacts, arities, fds, ids accesscheck.MultiFlag
	flag.Var(&rels, "rel", "relation declaration Name:type,type,... (repeatable)")
	flag.Var(&methods, "method", "access method declaration Name:Relation:pos,pos,... (repeatable; empty position list = free scan)")
	task := flag.String("task", "check", "decision problem: check, containment, relevance or chase")
	formula := flag.String("f", "", "AccLTL formula (task check; see accesscheck.ParseFormula syntax)")
	grounded := flag.Bool("grounded", false, "restrict to grounded access paths (check, relevance)")
	idempotent := flag.Bool("idempotent", false, "restrict to idempotent paths (check)")
	exact := flag.String("exact", "", "comma-separated methods restricted to exact responses ('*' = all; check)")
	depth := flag.Int("depth", 0, "search depth bound (0 = derived)")
	timeout := flag.Duration("timeout", 0, "abort the search after this long (0 = no limit)")

	mode := flag.String("mode", "ucq", "containment mode: ucq, datalog or access")
	q1 := flag.String("q1", "", "left-hand positive sentence (containment)")
	q2 := flag.String("q2", "", "right-hand positive sentence (containment)")
	flag.Var(&rules, "rule", "datalog rule 'Head(x) :- Body(x,y)' (repeatable; containment -mode datalog)")
	goal := flag.String("goal", "", "datalog goal predicate (containment -mode datalog)")
	flag.Var(&seedFacts, "seed", "initially known fact 'Rel(v,...)' (repeatable; containment -mode access, relevance)")

	probe := flag.String("probe", "", "boolean access method whose long-term relevance is asked (relevance)")
	bind := flag.String("bind", "", "comma-separated probe input values (relevance)")
	query := flag.String("q", "", "boolean positive query (relevance)")
	flag.Var(&hiddenFacts, "hidden", "concealed fact 'Rel(v,...)' (repeatable; relevance accessible-part mode)")

	flag.Var(&arities, "arity", "relation arity 'R:2' (repeatable; chase)")
	flag.Var(&fds, "fd", "functional dependency 'R:0,1->2' (repeatable; chase)")
	flag.Var(&ids, "id", "inclusion dependency 'R[0,1]<=S[2,3]' (repeatable; chase)")
	sigma := flag.String("sigma", "", "the FD whose implication is asked (chase)")
	steps := flag.Int("steps", 0, "chase step budget (0 = default 10000; chase)")
	flag.Parse()

	kind, err := accesscheck.ParseTaskKind(*task)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	switch kind {
	case accesscheck.TaskCheck:
		runCheck(ctx, rels, methods, *formula, *grounded, *idempotent, *exact, *depth)
	case accesscheck.TaskContainment:
		runContainment(ctx, *mode, *q1, *q2, rules, *goal, rels, methods, seedFacts, *depth)
	case accesscheck.TaskRelevance:
		runRelevance(ctx, rels, methods, *probe, *bind, *query, hiddenFacts, seedFacts, *grounded, *depth)
	case accesscheck.TaskChase:
		runChase(ctx, arities, fds, ids, *sigma, *steps)
	}
}

func runCheck(ctx context.Context, rels, methods []string, formula string, grounded, idempotent bool, exact string, depth int) {
	if formula == "" || len(rels) == 0 {
		flag.Usage()
		log.Fatal("acclcheck: -f and at least one -rel are required")
	}

	sch, err := accesscheck.ParseSchema(rels, methods)
	if err != nil {
		log.Fatal(err)
	}
	f, err := accesscheck.ParseFormula(formula)
	if err != nil {
		log.Fatal(err)
	}

	opts := []accesscheck.Option{
		accesscheck.WithExactSpec(exact),
		accesscheck.WithMaxDepth(depth),
	}
	if grounded {
		opts = append(opts, accesscheck.WithGrounded())
	}
	if idempotent {
		opts = append(opts, accesscheck.WithIdempotentOnly())
	}
	chk, err := accesscheck.NewChecker(opts...)
	if err != nil {
		log.Fatal(err)
	}

	frag, ok := accesscheck.Classify(f).Fragment()
	if !ok {
		log.Fatalf("acclcheck: formula is outside every fragment of Table 1 (past operators or non-positive sentences)")
	}
	fmt.Println("formula: ", f)
	fmt.Println("fragment:", frag)
	if !frag.Decidable() {
		fmt.Println("note: satisfiability for this fragment is undecidable (Theorem 3.1/5.2);")
		fmt.Println("      running the bounded semi-decision — 'unsat' means 'no witness within the bound'")
	}

	res, err := chk.Check(ctx, sch, f)
	if err != nil {
		log.Fatal(err)
	}

	if res.Satisfiable {
		fmt.Println("verdict:  SATISFIABLE")
		fmt.Println("witness: ", res.Witness)
	} else {
		fmt.Printf("verdict:  UNSATISFIABLE (within depth %d)\n", res.Depth)
		if res.Truncated {
			fmt.Println("note: the search hit its path cap before exhausting the space —")
			fmt.Println("      the verdict is relative to the cap, not just the depth bound")
		}
	}
	fmt.Printf("explored %d path prefixes in %s (engine %s)\n",
		res.PathsExplored, res.Elapsed.Round(time.Microsecond), res.Engine)
}

func runContainment(ctx context.Context, mode, q1Src, q2Src string, rules []string, goal string, rels, methods, seedFacts []string, depth int) {
	m, err := accesscheck.ParseContainmentMode(mode)
	if err != nil {
		log.Fatal(err)
	}
	if q2Src == "" {
		log.Fatal("acclcheck: -task containment requires -q2")
	}
	q2, err := accesscheck.ParseSentence(q2Src)
	if err != nil {
		log.Fatal(err)
	}
	var t *accesscheck.Task
	switch m {
	case accesscheck.ContainUCQ:
		q1 := mustSentence(q1Src, "-q1")
		t = accesscheck.NewUCQContainmentTask(q1, q2)
	case accesscheck.ContainDatalog:
		prog, err := accesscheck.ParseProgram(rules, goal)
		if err != nil {
			log.Fatal(err)
		}
		t = accesscheck.NewDatalogContainmentTask(prog, q2, depth)
	case accesscheck.ContainAccess:
		sch, err := accesscheck.ParseSchema(rels, methods)
		if err != nil {
			log.Fatal(err)
		}
		q1 := mustSentence(q1Src, "-q1")
		seed, err := parseOptionalInstance(sch, seedFacts)
		if err != nil {
			log.Fatal(err)
		}
		t = accesscheck.NewAccessContainmentTask(sch, q1, q2, seed, depth)
	}

	res, err := accesscheck.Do(ctx, t)
	if err != nil {
		log.Fatal(err)
	}
	rep := res.Containment
	fmt.Printf("mode:     %s (engine %s)\n", rep.Mode, res.Engine)
	if rep.Contained {
		fmt.Println("verdict:  CONTAINED")
	} else {
		fmt.Println("verdict:  NOT CONTAINED")
	}
	if !rep.Exact {
		fmt.Printf("note: verdict is relative to the bound (depth %d) — not exact\n", rep.DepthBound)
	}
	if rep.Counterexample != "" {
		fmt.Println("counterexample:", rep.Counterexample)
	}
	if rep.Witness != nil {
		fmt.Println("witness: ", rep.Witness)
	}
	switch rep.Mode {
	case accesscheck.ContainDatalog:
		fmt.Printf("checked %d expansions in %s\n", rep.ExpansionsChecked, res.Elapsed.Round(time.Microsecond))
	case accesscheck.ContainAccess:
		fmt.Printf("explored %d path prefixes in %s\n", rep.PathsExplored, res.Elapsed.Round(time.Microsecond))
	default:
		fmt.Printf("decided in %s\n", res.Elapsed.Round(time.Microsecond))
	}
}

func runRelevance(ctx context.Context, rels, methods []string, probe, bind, querySrc string, hiddenFacts, seedFacts []string, grounded bool, depth int) {
	sch, err := accesscheck.ParseSchema(rels, methods)
	if err != nil {
		log.Fatal(err)
	}
	query := mustSentence(querySrc, "-q")
	rt := &accesscheck.RelevanceTask{
		Schema:   sch,
		Probe:    probe,
		Query:    query,
		Grounded: grounded,
		MaxDepth: depth,
	}
	if rt.Hidden, err = parseOptionalInstance(sch, hiddenFacts); err != nil {
		log.Fatal(err)
	}
	if rt.Seed, err = parseOptionalInstance(sch, seedFacts); err != nil {
		log.Fatal(err)
	}
	if probe != "" && bind != "" {
		m, ok := sch.Method(probe)
		if !ok {
			log.Fatalf("acclcheck: schema has no method %q", probe)
		}
		if rt.Binding, err = accesscheck.ParseBinding(m, strings.Split(bind, ",")); err != nil {
			log.Fatal(err)
		}
	}

	res, err := accesscheck.Do(ctx, accesscheck.NewRelevanceTask(rt))
	if err != nil {
		log.Fatal(err)
	}
	rep := res.Relevance
	if probe != "" {
		if rep.Relevant {
			fmt.Printf("verdict:  RELEVANT — %s can still matter to the query\n", probe)
		} else {
			fmt.Printf("verdict:  NOT RELEVANT (within depth %d)\n", rep.Depth)
		}
		if res.Truncated {
			fmt.Println("note: the search hit a cap — the verdict is relative to it")
		}
		if rep.Witness != nil {
			fmt.Println("witness: ", rep.Witness)
		}
		fmt.Printf("explored %d path prefixes in %s (engine %s)\n",
			rep.PathsExplored, res.Elapsed.Round(time.Microsecond), res.Engine)
	} else {
		if rep.Answer {
			fmt.Println("verdict:  query HOLDS on the accessible part")
		} else {
			fmt.Println("verdict:  query does NOT hold on the accessible part")
		}
		fmt.Printf("accessible part: %d tuples (engine %s, %s)\n",
			rep.Accessible.Size(), res.Engine, res.Elapsed.Round(time.Microsecond))
	}
}

func runChase(ctx context.Context, aritySpecs, fdSpecs, idSpecs []string, sigmaSrc string, steps int) {
	ct := &accesscheck.ChaseTask{
		Arities:    make(map[string]int, len(aritySpecs)),
		StepBudget: steps,
	}
	for _, a := range aritySpecs {
		rel, n, err := accesscheck.ParseArity(a)
		if err != nil {
			log.Fatal(err)
		}
		ct.Arities[rel] = n
	}
	for _, src := range fdSpecs {
		fd, err := accesscheck.ParseFD(src)
		if err != nil {
			log.Fatal(err)
		}
		ct.FDs = append(ct.FDs, fd)
	}
	for _, src := range idSpecs {
		id, err := accesscheck.ParseID(src)
		if err != nil {
			log.Fatal(err)
		}
		ct.IDs = append(ct.IDs, id)
	}
	if sigmaSrc == "" {
		log.Fatal("acclcheck: -task chase requires -sigma")
	}
	sigma, err := accesscheck.ParseFD(sigmaSrc)
	if err != nil {
		log.Fatal(err)
	}
	ct.Sigma = sigma

	res, err := accesscheck.Do(ctx, accesscheck.NewChaseTask(ct))
	if err != nil {
		log.Fatal(err)
	}
	rep := res.Chase
	fmt.Printf("verdict:  %s\n", strings.ToUpper(rep.Verdict))
	if !rep.Terminated {
		fmt.Printf("note: the chase exhausted its %d-step budget before a fixpoint — raise -steps\n", rep.Budget)
	}
	fmt.Printf("chased %d steps to %d tuples in %s (engine %s)\n",
		rep.Steps, rep.Tuples, res.Elapsed.Round(time.Microsecond), res.Engine)
}

func mustSentence(src, flagName string) accesscheck.Sentence {
	if src == "" {
		log.Fatalf("acclcheck: %s is required for this task/mode", flagName)
	}
	q, err := accesscheck.ParseSentence(src)
	if err != nil {
		log.Fatal(err)
	}
	return q
}

func parseOptionalInstance(sch *accesscheck.Schema, facts []string) (*accesscheck.Instance, error) {
	if len(facts) == 0 {
		return nil, nil
	}
	return accesscheck.ParseInstance(sch, facts)
}
