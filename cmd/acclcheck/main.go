// acclcheck is the satisfiability checker CLI: declare a schema with access
// methods, give an AccLTL formula in the textual syntax of
// accesscheck.ParseFormula, and the tool classifies the formula into its
// Table 1 fragment, dispatches the matching solver, and prints the verdict
// with a witness path.
//
// Example (the introduction's query on the phone-directory schema):
//
//	acclcheck \
//	  -rel 'Mobile#:string,string,string,int' \
//	  -rel 'Address:string,string,string,int' \
//	  -method 'AcM1:Mobile#:0' \
//	  -method 'AcM2:Address:0,1' \
//	  -f '(![exists n,p,s,ph. pre Mobile#(n,p,s,ph)]) U [exists n,s,pc,h. bind AcM1(n) & pre Address(s,pc,n,h)]'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"accltl/accesscheck"
)

func main() {
	var rels, methods accesscheck.MultiFlag
	flag.Var(&rels, "rel", "relation declaration Name:type,type,... (repeatable)")
	flag.Var(&methods, "method", "access method declaration Name:Relation:pos,pos,... (repeatable; empty position list = free scan)")
	formula := flag.String("f", "", "AccLTL formula (see accesscheck.ParseFormula syntax)")
	grounded := flag.Bool("grounded", false, "restrict to grounded access paths")
	idempotent := flag.Bool("idempotent", false, "restrict to idempotent paths")
	exact := flag.String("exact", "", "comma-separated methods restricted to exact responses ('*' = all)")
	depth := flag.Int("depth", 0, "witness length bound (0 = derived from the formula)")
	timeout := flag.Duration("timeout", 0, "abort the search after this long (0 = no limit)")
	flag.Parse()

	if *formula == "" || len(rels) == 0 {
		flag.Usage()
		log.Fatal("acclcheck: -f and at least one -rel are required")
	}

	sch, err := accesscheck.ParseSchema(rels, methods)
	if err != nil {
		log.Fatal(err)
	}
	f, err := accesscheck.ParseFormula(*formula)
	if err != nil {
		log.Fatal(err)
	}

	opts := []accesscheck.Option{
		accesscheck.WithExactSpec(*exact),
		accesscheck.WithMaxDepth(*depth),
	}
	if *grounded {
		opts = append(opts, accesscheck.WithGrounded())
	}
	if *idempotent {
		opts = append(opts, accesscheck.WithIdempotentOnly())
	}
	chk, err := accesscheck.NewChecker(opts...)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	frag, ok := accesscheck.Classify(f).Fragment()
	if !ok {
		log.Fatalf("acclcheck: formula is outside every fragment of Table 1 (past operators or non-positive sentences)")
	}
	fmt.Println("formula: ", f)
	fmt.Println("fragment:", frag)
	if !frag.Decidable() {
		fmt.Println("note: satisfiability for this fragment is undecidable (Theorem 3.1/5.2);")
		fmt.Println("      running the bounded semi-decision — 'unsat' means 'no witness within the bound'")
	}

	res, err := chk.Check(ctx, sch, f)
	if err != nil {
		log.Fatal(err)
	}

	if res.Satisfiable {
		fmt.Println("verdict:  SATISFIABLE")
		fmt.Println("witness: ", res.Witness)
	} else {
		fmt.Printf("verdict:  UNSATISFIABLE (within depth %d)\n", res.Depth)
		if res.Truncated {
			fmt.Println("note: the search hit its path cap before exhausting the space —")
			fmt.Println("      the verdict is relative to the cap, not just the depth bound")
		}
	}
	fmt.Printf("explored %d path prefixes in %s (engine %s)\n",
		res.PathsExplored, res.Elapsed.Round(time.Microsecond), res.Engine)
}
