// acclcheck is the satisfiability checker CLI: declare a schema with access
// methods, give an AccLTL formula in the textual syntax of accltl.Parse,
// and the tool classifies the formula into its Table 1 fragment, dispatches
// the matching solver, and prints the verdict with a witness path.
//
// Example (the introduction's query on the phone-directory schema):
//
//	acclcheck \
//	  -rel 'Mobile#:string,string,string,int' \
//	  -rel 'Address:string,string,string,int' \
//	  -method 'AcM1:Mobile#:0' \
//	  -method 'AcM2:Address:0,1' \
//	  -f '(![exists n,p,s,ph. pre Mobile#(n,p,s,ph)]) U [exists n,s,pc,h. bind AcM1(n) & pre Address(s,pc,n,h)]'
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"accltl/internal/accltl"
	"accltl/internal/schema"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ";") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var rels, methods multiFlag
	flag.Var(&rels, "rel", "relation declaration Name:type,type,... (repeatable)")
	flag.Var(&methods, "method", "access method declaration Name:Relation:pos,pos,... (repeatable; empty position list = free scan)")
	formula := flag.String("f", "", "AccLTL formula (see accltl.Parse syntax)")
	grounded := flag.Bool("grounded", false, "restrict to grounded access paths")
	idempotent := flag.Bool("idempotent", false, "restrict to idempotent paths")
	exact := flag.String("exact", "", "comma-separated methods restricted to exact responses ('*' = all)")
	depth := flag.Int("depth", 0, "witness length bound (0 = derived from the formula)")
	flag.Parse()

	if *formula == "" || len(rels) == 0 {
		flag.Usage()
		log.Fatal("acclcheck: -f and at least one -rel are required")
	}

	sch, err := buildSchema(rels, methods)
	if err != nil {
		log.Fatal(err)
	}
	f, err := accltl.Parse(*formula)
	if err != nil {
		log.Fatal(err)
	}

	info := accltl.Classify(f)
	frag, ok := info.Fragment()
	if !ok {
		log.Fatalf("acclcheck: formula is outside every fragment of Table 1 (past operators or non-positive sentences)")
	}
	fmt.Println("formula: ", f)
	fmt.Println("fragment:", frag)
	if !frag.Decidable() {
		fmt.Println("note: satisfiability for this fragment is undecidable (Theorem 3.1/5.2);")
		fmt.Println("      running the bounded semi-decision — 'unsat' means 'no witness within the bound'")
	}

	opts := accltl.SolveOptions{
		Schema:         sch,
		Grounded:       *grounded,
		IdempotentOnly: *idempotent,
		MaxDepth:       *depth,
	}
	switch *exact {
	case "":
	case "*":
		opts.AllExact = true
	default:
		opts.ExactMethods = map[string]bool{}
		for _, m := range strings.Split(*exact, ",") {
			opts.ExactMethods[strings.TrimSpace(m)] = true
		}
	}

	var res accltl.SolveResult
	switch frag {
	case accltl.FragXZeroAcc:
		res, err = accltl.SolveX(f, opts)
	case accltl.FragZeroAcc, accltl.FragZeroAccNeq:
		res, err = accltl.SolveZeroAcc(f, opts)
	case accltl.FragPlus:
		res, err = accltl.SolvePlusDirect(f, opts)
	default:
		res, err = accltl.SolveBounded(f, opts)
	}
	if err != nil {
		log.Fatal(err)
	}

	if res.Satisfiable {
		fmt.Println("verdict:  SATISFIABLE")
		fmt.Println("witness: ", res.Witness)
	} else {
		fmt.Printf("verdict:  UNSATISFIABLE (within depth %d)\n", res.Depth)
	}
	fmt.Printf("explored %d path prefixes\n", res.PathsExplored)
}

func buildSchema(rels, methods multiFlag) (*schema.Schema, error) {
	sch := schema.New()
	for _, decl := range rels {
		parts := strings.SplitN(decl, ":", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("acclcheck: bad -rel %q (want Name:type,...)", decl)
		}
		var types []schema.Type
		for _, t := range strings.Split(parts[1], ",") {
			switch strings.TrimSpace(t) {
			case "int":
				types = append(types, schema.TypeInt)
			case "string":
				types = append(types, schema.TypeString)
			case "bool":
				types = append(types, schema.TypeBool)
			default:
				return nil, fmt.Errorf("acclcheck: unknown type %q in %q", t, decl)
			}
		}
		r, err := schema.NewRelation(parts[0], types...)
		if err != nil {
			return nil, err
		}
		if err := sch.AddRelation(r); err != nil {
			return nil, err
		}
	}
	for _, decl := range methods {
		parts := strings.Split(decl, ":")
		if len(parts) != 2 && len(parts) != 3 {
			return nil, fmt.Errorf("acclcheck: bad -method %q (want Name:Relation:pos,...)", decl)
		}
		rel, ok := sch.Relation(parts[1])
		if !ok {
			return nil, fmt.Errorf("acclcheck: method %q names unknown relation %q", parts[0], parts[1])
		}
		var inputs []int
		if len(parts) == 3 && strings.TrimSpace(parts[2]) != "" {
			for _, p := range strings.Split(parts[2], ",") {
				n, err := strconv.Atoi(strings.TrimSpace(p))
				if err != nil {
					return nil, fmt.Errorf("acclcheck: bad position %q in %q", p, decl)
				}
				inputs = append(inputs, n)
			}
		}
		m, err := schema.NewAccessMethod(parts[0], rel, inputs...)
		if err != nil {
			return nil, err
		}
		if err := sch.AddMethod(m); err != nil {
			return nil, err
		}
	}
	return sch, nil
}
