// pathtree regenerates Figure 1 of the paper: the tree of possible paths of
// the phone-directory schema — nodes are "Known Facts" configurations,
// edges are accesses with one possible well-formed response each.
//
// Usage:
//
//	pathtree [-depth N] [-grounded] [-exact] [-stats]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"accltl/accesscheck"
	"accltl/internal/instance"
	"accltl/internal/workload"
)

func main() {
	depth := flag.Int("depth", 2, "tree depth (accesses per path)")
	grounded := flag.Bool("grounded", false, "restrict to grounded paths")
	exact := flag.Bool("exact", false, "restrict all methods to exact responses")
	stats := flag.Bool("stats", false, "print per-depth path/configuration counts instead of the tree")
	flag.Parse()

	phone := workload.MustPhone()
	universe := phone.SmithJonesUniverse()

	// Figure 1 explores from the empty known-facts node; seeding the name
	// "Smith" makes the grounded variant interesting.
	var opts []accesscheck.Option
	if *grounded {
		seed := instance.NewInstance(phone.Schema)
		seed.MustAdd("Mobile#", instance.Str("Smith"), instance.Str("OX13QD"), instance.Str("Parks Rd"), instance.Int(5551212))
		opts = append(opts, accesscheck.WithGrounded(), accesscheck.WithInitialInstance(seed))
	}
	if *exact {
		opts = append(opts, accesscheck.WithAllExact())
	}
	chk, err := accesscheck.NewChecker(opts...)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	if *stats {
		st, err := chk.PathStats(ctx, phone.Schema, universe, *depth)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Figure 1 statistics (depth %d, grounded=%v, exact=%v)\n", *depth, *grounded, *exact)
		fmt.Printf("%-8s %-12s %-12s\n", "depth", "paths", "configs")
		for d := range st.PathsPerDepth {
			fmt.Printf("%-8d %-12d %-12d\n", d, st.PathsPerDepth[d], st.ConfigsPerDepth[d])
		}
		fmt.Printf("total paths: %d\n", st.TotalPaths)
		return
	}

	tree, err := chk.PathTree(ctx, phone.Schema, universe, *depth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 1: tree of possible paths (depth %d, %d nodes)\n\n", *depth, tree.CountNodes())
	tree.Render(os.Stdout)
}
