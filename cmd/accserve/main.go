// accserve is the batch check server: an HTTP JSON API over the
// accesscheck facade with a bounded worker pool, per-request response-time
// budgets and an exact-results-only LRU cache.
//
//	accserve -addr :8080 -workers 8 -parallelism 2 -cache-size 4096 -default-budget 2s
//
// -workers bounds concurrent solves; -parallelism fans each solve's
// exploration out over that many walker goroutines (0 = auto, keeping
// workers × parallelism ≤ GOMAXPROCS).
//
// Caching tiers: -cache-shards splits the in-memory result LRU into
// independently locked fingerprint-routed shards; -cache-dir backs it
// with an append-only disk tier so exact check results survive restarts
// (evicted and shutdown-resident entries are written behind, and a
// restarted process with the same directory serves them without
// re-solving); -negative-cache-bits arms a process-wide Bloom negative
// cache that lets the parallel engines skip dominance-memo locks for
// never-seen states. All three are observable under /metrics
// (accserve_cache_tier_*, accserve_cache_hit_ratio{tier=...}).
//
// Endpoints (see accltl/accesscheck/server for the wire format):
//
//	POST /v1/check?budget=250ms   one check
//	POST /v1/batch                many checks, answered in order; with
//	                              `Accept: application/x-ndjson` items
//	                              stream as NDJSON lines on completion
//	POST /v1/shard                one fabric shard (partial check)
//	POST /v1/join                 coordinator: worker membership join/renew
//	GET  /v1/workers              coordinator: membership table admin view
//	GET  /healthz                 liveness
//	GET  /metrics                 counters: cache hits/misses, truncations,
//	                              in-flight solves, cause-split expiries
//	                              (budget / shard budget / disconnect),
//	                              anytime partials/resumes, checkpoints
//
// Anytime answers: a budget that expires mid-search with progress answers
// 200 with `coverage` < 1, `resumable: true` and a Retry-After header; the
// suspended frontier is checkpointed (bounded LRU, fingerprint-keyed) and
// an identical follow-up request resumes it, executing only unfinished
// shards. Repeat under a doubling budget to converge on the exact verdict.
// Zero-progress expiry 504s with code "budget_exhausted" (or
// "shard_budget_exhausted" for a coordinator-imposed per-shard deadline);
// a vanished client is 499 "client_disconnected".
//
// Distributed roles: `-worker` names the default standalone role (every
// server accepts /v1/shard); `-coordinator` runs the fan-out role instead,
// which solves nothing locally and dispatches shards to its membership
// table with cache-affinity routing, retries, hedging and per-worker
// circuit breakers. Members arrive two ways, combinable:
//
//   - `-fabric-workers=url,url` names permanent members;
//   - workers started with `-join=http://coordinator:8080` self-register
//     and renew a TTL lease (`-lease-ttl`) on a heartbeat, so the ring
//     grows and shrinks without a coordinator restart.
//
// Deterministic chaos: `-failpoints` (or ACCSERVE_FAILPOINTS) arms named
// fault injections, e.g. `-failpoints='worker.shard=err500:1'` to 500 the
// first shard request. See accltl/accesscheck/fabric.ParseFailpoints.
//
// Example:
//
//	curl -s localhost:8080/v1/check -d '{
//	  "relations": ["Mobile#:string,string,string,int"],
//	  "methods":   ["AcM1:Mobile#:0"],
//	  "formula":   "[exists n. bind AcM1(n)]",
//	  "budget":    "250ms"
//	}'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime/debug"
	"strings"
	"syscall"
	"time"

	"accltl/accesscheck/fabric"
	"accltl/accesscheck/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "max concurrent solves (0 = GOMAXPROCS)")
	parallelism := flag.Int("parallelism", 0,
		"exploration walkers per solve; peak exploration concurrency is workers x parallelism (0 = auto: capped so the product stays <= GOMAXPROCS)")
	cacheSize := flag.Int("cache-size", 1024, "LRU result cache capacity (entries)")
	cacheShards := flag.Int("cache-shards", 8, "in-memory result cache shard count (rounded to a power of two, capped at -cache-size)")
	cacheDir := flag.String("cache-dir", "", "directory for the persistent result-cache tier; exact check results survive restarts (empty = memory-only)")
	negativeCacheBits := flag.Int("negative-cache-bits", 0, "total bits for the process-wide Bloom negative cache fronting the dominance memos (0 = off)")
	defaultBudget := flag.Duration("default-budget", 5*time.Second, "per-request deadline when the request names none")
	worker := flag.Bool("worker", false, "run as a fabric worker (the default standalone role; the flag only names it)")
	coordinator := flag.Bool("coordinator", false, "run as a fabric coordinator: dispatch shards to the membership table instead of solving locally")
	fabricWorkers := flag.String("fabric-workers", "", "comma-separated permanent worker base URLs for -coordinator (e.g. http://h1:8080,http://h2:8080); may be empty when workers self-register via -join")
	hedgeAfter := flag.Duration("hedge-after", 400*time.Millisecond, "coordinator: duplicate a straggling shard onto a second worker after this long")
	retries := flag.Int("dispatch-retries", 2, "coordinator: re-attempts per worker on transient failure")
	maxBackoff := flag.Duration("max-backoff", 2*time.Second, "coordinator: cap on the jittered exponential retry backoff")
	breakerThreshold := flag.Int("breaker-threshold", 3, "coordinator: consecutive failures that open a worker's circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "coordinator: how long an open breaker denies dispatches before one half-open trial")
	leaseTTL := flag.Duration("lease-ttl", 15*time.Second, "membership lease: coordinator default grant / worker requested TTL for -join")
	join := flag.String("join", "", "worker: coordinator base URL to self-register with and heartbeat against")
	advertise := flag.String("advertise", "", "worker: own base URL as the coordinator should dial it (default http://localhost<addr>)")
	failpointSpec := flag.String("failpoints", "", "deterministic fault injection spec, e.g. 'worker.shard=err500:1,dispatch.send=drop:2+' (overrides ACCSERVE_FAILPOINTS)")
	flag.Parse()

	if *worker && *coordinator {
		log.Fatal("accserve: -worker and -coordinator are mutually exclusive")
	}
	role := "worker"
	if *coordinator {
		role = "coordinator"
	}

	spec := *failpointSpec
	if spec == "" {
		spec = os.Getenv("ACCSERVE_FAILPOINTS")
	}
	failpoints, err := fabric.ParseFailpoints(spec)
	if err != nil {
		log.Fatalf("accserve: %v", err)
	}
	if failpoints != nil {
		log.Printf("accserve: FAILPOINTS ARMED: %s", spec)
	}

	var handler http.Handler
	var workerSrv *server.Server
	var workerList []string
	switch role {
	case "coordinator":
		if *join != "" {
			log.Fatal("accserve: -join is a worker flag; a coordinator accepts joins, it does not send them")
		}
		for _, u := range strings.Split(*fabricWorkers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				workerList = append(workerList, u)
			}
		}
		if len(workerList) == 0 {
			log.Print("accserve: no -fabric-workers; membership starts empty and grows via POST /v1/join")
		}
		coord, err := server.NewCoordinator(server.CoordinatorConfig{
			Workers: workerList,
			Server: server.Config{
				DefaultBudget: *defaultBudget,
			},
			Retries:    *retries,
			MaxBackoff: *maxBackoff,
			HedgeAfter: *hedgeAfter,
			Breaker: fabric.BreakerConfig{
				Threshold: *breakerThreshold,
				Cooldown:  *breakerCooldown,
			},
			DefaultLeaseTTL: *leaseTTL,
			Failpoints:      failpoints,
		})
		if err != nil {
			log.Fatalf("accserve: %v", err)
		}
		handler = coord
	default:
		workerSrv = server.New(server.Config{
			Workers:           *workers,
			Parallelism:       *parallelism,
			CacheSize:         *cacheSize,
			CacheShards:       *cacheShards,
			CacheDir:          *cacheDir,
			NegativeCacheBits: *negativeCacheBits,
			DefaultBudget:     *defaultBudget,
			Failpoints:        failpoints,
		})
		handler = workerSrv
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Bounds header+body reads against slow-trickle clients; solve time
		// is governed by the per-request budget, not the read deadline.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
	}

	log.Printf("accserve %s starting: role=%s addr=%s", buildVersion(), role, *addr)
	if role == "coordinator" {
		log.Printf("accserve coordinator: workers=%s hedge-after=%s retries=%d default-budget=%s breaker=%d/%s lease-ttl=%s",
			strings.Join(workerList, ","), *hedgeAfter, *retries, *defaultBudget, *breakerThreshold, *breakerCooldown, *leaseTTL)
	} else {
		log.Printf("accserve worker: workers=%d parallelism=%d cache=%d default-budget=%s",
			*workers, *parallelism, *cacheSize, *defaultBudget)
	}

	// Worker self-registration: join the coordinator now and keep the TTL
	// lease renewed until shutdown. The loop dies with the process — no
	// leave message; the lease expiring is what evicts us, which is what
	// makes SIGKILL safe.
	hbCtx, hbCancel := context.WithCancel(context.Background())
	defer hbCancel()
	if *join != "" {
		adv := *advertise
		if adv == "" {
			adv = "http://localhost" + *addr
		}
		hb := &fabric.Heartbeat{
			Coordinator: strings.TrimRight(*join, "/"),
			Advertise:   adv,
			TTL:         *leaseTTL,
			OnError: func(err error) {
				log.Printf("accserve: membership renewal: %v", err)
			},
		}
		log.Printf("accserve worker: joining %s as %s (lease %s)", hb.Coordinator, adv, *leaseTTL)
		go hb.Run(hbCtx)
	}

	errc := make(chan error, 1)
	go func() {
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case sig := <-sigc:
		log.Printf("accserve: %s — draining", sig)
		hbCancel() // stop renewing; the lease lapses and the ring drops us
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("accserve: shutdown: %v", err)
		}
		// After the listener drains: flush the resident exact results
		// through to the disk tier so a restart with the same -cache-dir
		// answers them without re-solving.
		if workerSrv != nil {
			if err := workerSrv.Close(); err != nil {
				log.Printf("accserve: cache close: %v", err)
			}
		}
	}
}

// buildVersion summarises what binary is running: module version when
// installed, else the VCS revision the build embedded.
func buildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "(no build info)"
	}
	ver := bi.Main.Version
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if ver == "" || ver == "(devel)" {
			return rev + dirty
		}
		return ver + " (" + rev + dirty + ")"
	}
	if ver == "" {
		return "(devel)"
	}
	return ver
}
