// accserve is the batch check server: an HTTP JSON API over the
// accesscheck facade with a bounded worker pool, per-request response-time
// budgets and an exact-results-only LRU cache.
//
//	accserve -addr :8080 -workers 8 -parallelism 2 -cache-size 4096 -default-budget 2s
//
// -workers bounds concurrent solves; -parallelism fans each solve's
// exploration out over that many walker goroutines (0 = auto, keeping
// workers × parallelism ≤ GOMAXPROCS).
//
// Endpoints (see accltl/accesscheck/server for the wire format):
//
//	POST /v1/check?budget=250ms   one check
//	POST /v1/batch                many checks, answered in order
//	GET  /healthz                 liveness
//	GET  /metrics                 counters: cache hits/misses, truncations,
//	                              in-flight solves, deadline expiries
//
// Example:
//
//	curl -s localhost:8080/v1/check -d '{
//	  "relations": ["Mobile#:string,string,string,int"],
//	  "methods":   ["AcM1:Mobile#:0"],
//	  "formula":   "[exists n. bind AcM1(n)]",
//	  "budget":    "250ms"
//	}'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"accltl/accesscheck/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "max concurrent solves (0 = GOMAXPROCS)")
	parallelism := flag.Int("parallelism", 0,
		"exploration walkers per solve; peak exploration concurrency is workers x parallelism (0 = auto: capped so the product stays <= GOMAXPROCS)")
	cacheSize := flag.Int("cache-size", 1024, "LRU result cache capacity (entries)")
	defaultBudget := flag.Duration("default-budget", 5*time.Second, "per-request deadline when the request names none")
	flag.Parse()

	srv := &http.Server{
		Addr: *addr,
		Handler: server.New(server.Config{
			Workers:       *workers,
			Parallelism:   *parallelism,
			CacheSize:     *cacheSize,
			DefaultBudget: *defaultBudget,
		}),
		// Bounds header+body reads against slow-trickle clients; solve time
		// is governed by the per-request budget, not the read deadline.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("accserve listening on %s (workers=%d parallelism=%d cache=%d default-budget=%s)",
			*addr, *workers, *parallelism, *cacheSize, *defaultBudget)
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case sig := <-sigc:
		log.Printf("accserve: %s — draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("accserve: shutdown: %v", err)
		}
	}
}
