// accserve is the batch check server: an HTTP JSON API over the
// accesscheck facade with a bounded worker pool, per-request response-time
// budgets and an exact-results-only LRU cache.
//
//	accserve -addr :8080 -workers 8 -parallelism 2 -cache-size 4096 -default-budget 2s
//
// -workers bounds concurrent solves; -parallelism fans each solve's
// exploration out over that many walker goroutines (0 = auto, keeping
// workers × parallelism ≤ GOMAXPROCS).
//
// Endpoints (see accltl/accesscheck/server for the wire format):
//
//	POST /v1/check?budget=250ms   one check
//	POST /v1/batch                many checks, answered in order
//	POST /v1/shard                one fabric shard (partial check)
//	GET  /healthz                 liveness
//	GET  /metrics                 counters: cache hits/misses, truncations,
//	                              in-flight solves, deadline expiries
//
// Distributed roles: `-worker` names the default standalone role (every
// server accepts /v1/shard); `-coordinator -fabric-workers=url,url` runs
// the fan-out role instead, which solves nothing locally and dispatches
// shards to the listed workers with cache-affinity routing, retries and
// hedging.
//
// Example:
//
//	curl -s localhost:8080/v1/check -d '{
//	  "relations": ["Mobile#:string,string,string,int"],
//	  "methods":   ["AcM1:Mobile#:0"],
//	  "formula":   "[exists n. bind AcM1(n)]",
//	  "budget":    "250ms"
//	}'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime/debug"
	"strings"
	"syscall"
	"time"

	"accltl/accesscheck/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "max concurrent solves (0 = GOMAXPROCS)")
	parallelism := flag.Int("parallelism", 0,
		"exploration walkers per solve; peak exploration concurrency is workers x parallelism (0 = auto: capped so the product stays <= GOMAXPROCS)")
	cacheSize := flag.Int("cache-size", 1024, "LRU result cache capacity (entries)")
	defaultBudget := flag.Duration("default-budget", 5*time.Second, "per-request deadline when the request names none")
	worker := flag.Bool("worker", false, "run as a fabric worker (the default standalone role; the flag only names it)")
	coordinator := flag.Bool("coordinator", false, "run as a fabric coordinator: dispatch shards to -fabric-workers instead of solving locally")
	fabricWorkers := flag.String("fabric-workers", "", "comma-separated worker base URLs for -coordinator (e.g. http://h1:8080,http://h2:8080)")
	hedgeAfter := flag.Duration("hedge-after", 400*time.Millisecond, "coordinator: duplicate a straggling shard onto a second worker after this long")
	retries := flag.Int("dispatch-retries", 2, "coordinator: re-attempts per worker on transient failure")
	flag.Parse()

	if *worker && *coordinator {
		log.Fatal("accserve: -worker and -coordinator are mutually exclusive")
	}
	role := "worker"
	if *coordinator {
		role = "coordinator"
	}

	var handler http.Handler
	var workerList []string
	switch role {
	case "coordinator":
		for _, u := range strings.Split(*fabricWorkers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				workerList = append(workerList, u)
			}
		}
		if len(workerList) == 0 {
			log.Fatal("accserve: -coordinator requires -fabric-workers=url[,url...]")
		}
		coord, err := server.NewCoordinator(server.CoordinatorConfig{
			Workers: workerList,
			Server: server.Config{
				DefaultBudget: *defaultBudget,
			},
			Retries:    *retries,
			HedgeAfter: *hedgeAfter,
		})
		if err != nil {
			log.Fatalf("accserve: %v", err)
		}
		handler = coord
	default:
		handler = server.New(server.Config{
			Workers:       *workers,
			Parallelism:   *parallelism,
			CacheSize:     *cacheSize,
			DefaultBudget: *defaultBudget,
		})
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Bounds header+body reads against slow-trickle clients; solve time
		// is governed by the per-request budget, not the read deadline.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
	}

	log.Printf("accserve %s starting: role=%s addr=%s", buildVersion(), role, *addr)
	if role == "coordinator" {
		log.Printf("accserve coordinator: workers=%s hedge-after=%s retries=%d default-budget=%s",
			strings.Join(workerList, ","), *hedgeAfter, *retries, *defaultBudget)
	} else {
		log.Printf("accserve worker: workers=%d parallelism=%d cache=%d default-budget=%s",
			*workers, *parallelism, *cacheSize, *defaultBudget)
	}

	errc := make(chan error, 1)
	go func() {
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case sig := <-sigc:
		log.Printf("accserve: %s — draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("accserve: shutdown: %v", err)
		}
	}
}

// buildVersion summarises what binary is running: module version when
// installed, else the VCS revision the build embedded.
func buildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "(no build info)"
	}
	ver := bi.Main.Version
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if ver == "" || ver == "(devel)" {
			return rev + dirty
		}
		return ver + " (" + rev + dirty + ")"
	}
	if ver == "" {
		return "(devel)"
	}
	return ver
}
