// table1 regenerates Table 1 of the paper: one row per specification
// formalism with its satisfiability complexity, and the DjC/FD/DF/AccOr
// expressibility columns re-derived by classifying the canonical
// restriction specs through each fragment's classifier. With -measure it
// additionally runs each decidable row's solver on a scaled workload and
// reports wall-clock growth, the empirical counterpart of the complexity
// column.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"accltl/accesscheck"
	"accltl/internal/workload"
)

type row struct {
	name       string
	complexity string
	decidable  bool
	// accepts reports whether a formula with the given features fits the
	// fragment.
	accepts func(info accesscheck.Info) bool
}

var rows = []row{
	{"AccLTL(FO∃+,≠_Acc)", "undecidable", false, func(i accesscheck.Info) bool {
		return i.EmbeddedPositive && !i.HasPast
	}},
	{"AccLTL(FO∃+_Acc)", "undecidable", false, func(i accesscheck.Info) bool {
		return i.EmbeddedPositive && !i.HasInequality && !i.HasPast
	}},
	{"AccLTL+", "in 3EXPTIME", true, func(i accesscheck.Info) bool {
		return i.EmbeddedPositive && !i.HasInequality && i.BindingPositive && !i.HasPast
	}},
	{"A-automata", "2EXPTIME-compl.", true, func(i accesscheck.Info) bool {
		// Everything AccLTL+ compiles into A-automata (Lemma 4.5).
		return i.EmbeddedPositive && !i.HasInequality && i.BindingPositive && !i.HasPast
	}},
	{"AccLTL(FO∃+_0-Acc)", "PSPACE-compl.", true, func(i accesscheck.Info) bool {
		return i.EmbeddedPositive && !i.HasInequality && i.ZeroAcc && !i.HasPast
	}},
	{"AccLTL(FO∃+,≠_0-Acc)", "PSPACE-compl.", true, func(i accesscheck.Info) bool {
		return i.EmbeddedPositive && i.ZeroAcc && !i.HasPast
	}},
	{"AccLTL(X)(FO∃+,≠_0-Acc)", "ΣP2-compl.", true, func(i accesscheck.Info) bool {
		return i.EmbeddedPositive && i.ZeroAcc && i.OnlyNext && !i.HasPast
	}},
}

func yesNo(b bool) string {
	if b {
		return "Yes"
	}
	return "No"
}

func main() {
	measure := flag.Bool("measure", false, "run scaled workloads per decidable row and report timings")
	flag.Parse()

	phone := workload.MustPhone()
	// Each restriction class has encoding variants for different
	// fragments: the direct G-form, the binding-positive rewriting of
	// Section 6 (negated IsBind as a disjunction over the other methods),
	// and the bounded X-unrolling. A class is expressible in a row when
	// some variant classifies into the row's fragment.
	specs := map[string][]accesscheck.Formula{
		"DjC":   {phone.DisjointnessConstraint(), phone.DisjointnessConstraintX(3)},
		"FD":    {phone.FDConstraint(), phone.FDConstraintX(3)},
		"DF":    {phone.DataflowRestriction(), phone.DataflowRestrictionPlus()},
		"AccOr": {phone.AccessOrderRestriction(), phone.AccessOrderRestrictionPlus()},
	}
	infos := map[string][]accesscheck.Info{}
	for k, fs := range specs {
		for _, f := range fs {
			infos[k] = append(infos[k], accesscheck.Classify(f))
		}
	}
	expressible := func(r row, class string) bool {
		for _, info := range infos[class] {
			if r.accepts(info) {
				return true
			}
		}
		return false
	}

	fmt.Println("Table 1: Complexity and application examples for path specifications.")
	fmt.Printf("%-26s %-18s %-5s %-5s %-5s %-6s\n", "Language", "Complexity", "DjC", "FD", "DF", "AccOr")
	for _, r := range rows {
		fmt.Printf("%-26s %-18s %-5s %-5s %-5s %-6s\n",
			r.name, r.complexity,
			yesNo(expressible(r, "DjC")),
			yesNo(expressible(r, "FD")),
			yesNo(expressible(r, "DF")),
			yesNo(expressible(r, "AccOr")),
		)
	}

	if !*measure {
		return
	}

	ctx := context.Background()
	fmt.Println("\nEmpirical shape check (satisfiability wall-clock on scaled chains):")
	fmt.Printf("%-26s %-8s %-14s %-10s\n", "Row", "n", "time", "verdict")
	for _, n := range []int{1, 2, 3} {
		chain := workload.MustChain(n + 1)
		// PSPACE row: nested-eventually family. One revealing access per
		// chain level bounds the witness; the formula-derived default
		// bound is far looser and only inflates the exhaustive search.
		timeRow("AccLTL(FO∃+_0-Acc)", n, func() (bool, error) {
			res, err := accesscheck.Check(ctx, chain.Schema, chain.NestedEventually(n),
				accesscheck.WithEngine(accesscheck.EngineZeroAcc),
				accesscheck.WithMaxDepth(n+2))
			if err != nil {
				return false, err
			}
			return res.Satisfiable, nil
		})
		// ΣP2 row: X-tower family (its bound is tight by construction).
		timeRow("AccLTL(X)(FO∃+,≠_0-Acc)", n, func() (bool, error) {
			res, err := accesscheck.Check(ctx, chain.Schema, chain.XTower(n),
				accesscheck.WithEngine(accesscheck.EngineX))
			if err != nil {
				return false, err
			}
			return res.Satisfiable, nil
		})
		// AccLTL+ row: reach-last through the automaton pipeline. One
		// revealing access per level bounds the witness. This row pays an
		// exponential in sentence count over the full Sch_Acc vocabulary
		// (guard valuations × binding enumeration) that the 0-Acc rows
		// don't — which is exactly the Table 1 complexity gap.
		timeRow("AccLTL+ (via A-automata)", n, func() (bool, error) {
			res, err := accesscheck.Check(ctx, chain.Schema, chain.NestedEventually(n),
				accesscheck.WithEngine(accesscheck.EngineAutomaton),
				accesscheck.WithMaxDepth(n+2))
			if err != nil {
				return false, err
			}
			return res.Satisfiable, nil
		})
	}
}

func timeRow(name string, n int, f func() (bool, error)) {
	start := time.Now()
	sat, err := f()
	if err != nil {
		log.Fatalf("%s n=%d: %v", name, n, err)
	}
	fmt.Printf("%-26s %-8d %-14s sat=%v\n", name, n, time.Since(start).Round(time.Microsecond), sat)
}
